"""Synthetic user-profile generators.

The paper derives 200 LDA topics from tweets / news text and represents each
user by a weighted term vector.  KB-TIM consumes only the resulting
``tf_{w,v}`` matrix, so the reproduction generates that matrix directly
(DESIGN.md substitution table):

* topic popularity follows a Zipf law — a few verticals ("music",
  "software") attract many interested users while the tail is niche, which
  is what makes per-keyword index sizes (θ_w) skewed, as in the paper's
  per-keyword index segments;
* each user holds a handful of topics with preference weights normalised to
  sum to 1, matching the preference tables of Figure 1.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ProfileError
from repro.profiles.store import ProfileStore
from repro.profiles.topics import TopicSpace
from repro.utils.rng import RngLike, as_rng
from repro.utils.validation import check_positive, check_positive_int

__all__ = ["zipf_profiles", "uniform_profiles", "zipf_weights"]


def zipf_weights(n: int, exponent: float = 1.0) -> np.ndarray:
    """Normalised Zipf probabilities ``p_i ∝ (i+1)^-exponent``."""
    n = check_positive_int("n", n)
    check_positive("exponent", exponent)
    ranks = np.arange(1, n + 1, dtype=np.float64)
    weights = ranks**-exponent
    return weights / weights.sum()


def zipf_profiles(
    n_users: int,
    topics: TopicSpace,
    *,
    mean_topics_per_user: float = 3.0,
    zipf_exponent: float = 1.0,
    rng: RngLike = None,
) -> ProfileStore:
    """Generate profiles with Zipf-popular topics.

    Parameters
    ----------
    n_users:
        Number of users; every user receives at least one topic.
    topics:
        The topic space; popularity rank follows topic id order, so id 0
        ("software" in the default space) is the most popular vertical.
    mean_topics_per_user:
        Expected number of topics per user (Figure 1 shows 2-4).
    zipf_exponent:
        Popularity skew; 1.0 is the classic Zipf law.
    """
    n_users = check_positive_int("n_users", n_users)
    check_positive("mean_topics_per_user", mean_topics_per_user)
    if mean_topics_per_user > topics.size:
        raise ProfileError(
            f"mean_topics_per_user ({mean_topics_per_user}) exceeds "
            f"topic-space size ({topics.size})"
        )
    gen = as_rng(rng)
    popularity = zipf_weights(topics.size, zipf_exponent)

    entries = []
    # Number of topics per user: 1 + Poisson keeps every user targetable.
    extra = gen.poisson(max(mean_topics_per_user - 1.0, 0.0), size=n_users)
    for user in range(n_users):
        n_topics = int(min(1 + extra[user], topics.size))
        chosen = gen.choice(topics.size, size=n_topics, replace=False, p=popularity)
        weights = gen.exponential(1.0, size=n_topics)
        weights /= weights.sum()
        for topic_id, weight in zip(chosen, weights):
            entries.append((user, int(topic_id), float(weight)))
    return ProfileStore(n_users, topics, entries)


def uniform_profiles(
    n_users: int,
    topics: TopicSpace,
    *,
    topics_per_user: int = 2,
    rng: RngLike = None,
) -> ProfileStore:
    """Profiles with uniformly popular topics and equal weights.

    A degenerate control used by tests: with uniform profiles, targeted and
    untargeted influence maximization should agree closely, which isolates
    the effect of the weighting from the effect of the sampler.
    """
    n_users = check_positive_int("n_users", n_users)
    topics_per_user = check_positive_int("topics_per_user", topics_per_user)
    if topics_per_user > topics.size:
        raise ProfileError(
            f"topics_per_user ({topics_per_user}) exceeds "
            f"topic-space size ({topics.size})"
        )
    gen = as_rng(rng)
    weight = 1.0 / topics_per_user
    entries = []
    for user in range(n_users):
        chosen = gen.choice(topics.size, size=topics_per_user, replace=False)
        for topic_id in chosen:
            entries.append((user, int(topic_id), weight))
    return ProfileStore(n_users, topics, entries)
