"""Topic space: the universal set ``T`` of Section 3.1.

The paper maps user activity into a latent topic space via topic modelling
and uses "topic" and "keyword" interchangeably.  For the algorithms, a topic
is just an id with a name; this class provides the bidirectional mapping and
validation.  The default spaces used by the synthetic datasets name topics
after advertising verticals so example output reads like the paper's
Table 8.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Sequence, Tuple, Union

from repro.errors import ProfileError

__all__ = ["TopicSpace", "DEFAULT_TOPIC_NAMES"]

TopicRef = Union[int, str]

#: Advertising-vertical names used by the synthetic datasets.  The paper's
#: examples revolve around "software", "journal", "music", "book" etc.; we
#: keep those first so example output mirrors Table 8 / Figure 1.
DEFAULT_TOPIC_NAMES: Tuple[str, ...] = (
    "software",
    "journal",
    "music",
    "book",
    "sport",
    "car",
    "travel",
    "food",
    "fashion",
    "finance",
    "movies",
    "games",
    "health",
    "science",
    "politics",
    "education",
    "art",
    "photography",
    "fitness",
    "pets",
    "gardening",
    "cooking",
    "history",
    "comics",
    "theatre",
    "dance",
    "hiking",
    "sailing",
    "astronomy",
    "chess",
    "poker",
    "cycling",
    "running",
    "swimming",
    "yoga",
    "investing",
    "crypto",
    "realestate",
    "parenting",
    "weddings",
    "diy",
    "electronics",
    "cameras",
    "audio",
    "watches",
    "jewelry",
    "shoes",
    "outdoors",
)


class TopicSpace:
    """Immutable ordered set of topic names with id lookup.

    Topic ids are dense integers ``0..size-1`` in declaration order.
    """

    __slots__ = ("_names", "_ids")

    def __init__(self, names: Iterable[str]) -> None:
        names = tuple(names)
        if not names:
            raise ProfileError("topic space must contain at least one topic")
        ids = {}
        for i, name in enumerate(names):
            if not isinstance(name, str) or not name:
                raise ProfileError(f"topic names must be non-empty strings, got {name!r}")
            if name in ids:
                raise ProfileError(f"duplicate topic name: {name!r}")
            ids[name] = i
        self._names: Tuple[str, ...] = names
        self._ids = ids

    @classmethod
    def default(cls, size: int = len(DEFAULT_TOPIC_NAMES)) -> "TopicSpace":
        """The built-in advertising-vertical space, truncated or extended.

        Sizes beyond the built-in name list get synthetic ``topic_<i>``
        names, letting tests exercise the paper's 200-topic setting.
        """
        if size < 1:
            raise ProfileError(f"size must be >= 1, got {size}")
        if size <= len(DEFAULT_TOPIC_NAMES):
            return cls(DEFAULT_TOPIC_NAMES[:size])
        extra = [f"topic_{i}" for i in range(len(DEFAULT_TOPIC_NAMES), size)]
        return cls(DEFAULT_TOPIC_NAMES + tuple(extra))

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of topics."""
        return len(self._names)

    def name(self, topic_id: int) -> str:
        """Topic name for ``topic_id``."""
        if not 0 <= topic_id < self.size:
            raise ProfileError(f"topic id {topic_id} out of range [0, {self.size})")
        return self._names[topic_id]

    def id(self, ref: TopicRef) -> int:
        """Resolve a topic id or name into an id."""
        if isinstance(ref, str):
            try:
                return self._ids[ref]
            except KeyError:
                raise ProfileError(f"unknown topic: {ref!r}") from None
        if isinstance(ref, bool) or not isinstance(ref, int):
            raise ProfileError(f"topic reference must be int or str, got {type(ref).__name__}")
        if not 0 <= ref < self.size:
            raise ProfileError(f"topic id {ref} out of range [0, {self.size})")
        return int(ref)

    def ids(self, refs: Iterable[TopicRef]) -> List[int]:
        """Resolve several topic references, rejecting duplicates."""
        resolved = [self.id(ref) for ref in refs]
        if len(set(resolved)) != len(resolved):
            raise ProfileError("duplicate topics in keyword set")
        return resolved

    def names(self) -> Sequence[str]:
        """All topic names in id order."""
        return self._names

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.size

    def __iter__(self) -> Iterator[str]:
        return iter(self._names)

    def __contains__(self, ref: object) -> bool:
        if isinstance(ref, str):
            return ref in self._ids
        if isinstance(ref, int) and not isinstance(ref, bool):
            return 0 <= ref < self.size
        return False

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TopicSpace):
            return NotImplemented
        return self._names == other._names

    def __hash__(self) -> int:
        return hash(self._names)

    def __repr__(self) -> str:
        preview = ", ".join(self._names[:3])
        suffix = ", ..." if self.size > 3 else ""
        return f"TopicSpace(size={self.size}: {preview}{suffix})"
