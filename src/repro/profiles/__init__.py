"""User-profile substrate: topic space, tf-idf store, synthetic generators."""

from repro.profiles.topics import TopicSpace
from repro.profiles.store import ProfileStore
from repro.profiles.generators import zipf_profiles, uniform_profiles
from repro.profiles.io import (
    load_profiles_npz,
    load_profiles_tsv,
    save_profiles_npz,
    save_profiles_tsv,
)

__all__ = [
    "TopicSpace",
    "ProfileStore",
    "zipf_profiles",
    "uniform_profiles",
    "save_profiles_tsv",
    "load_profiles_tsv",
    "save_profiles_npz",
    "load_profiles_npz",
]
