"""Figure experiments (Section 6, Figures 4-7).

Figures are reproduced as data series (one table row per plotted point);
the benches print them and EXPERIMENTS.md records the shape comparison.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.core.wris import wris_query
from repro.datasets.synthetic import Dataset
from repro.experiments.harness import ExperimentContext, _stable_salt
from repro.experiments.reporting import Table
from repro.experiments.tables import workload_queries
from repro.graph.stats import in_degree_histogram, log_binned_histogram
from repro.utils.rng import optional_seed

__all__ = ["run_figure4", "run_figure5", "run_figure6", "run_figure7"]


def run_figure4(ctx: ExperimentContext, *, bins_per_decade: int = 4) -> Table:
    """In-degree distributions (log-binned) for both dataset families."""
    table = Table(
        "Figure 4: in-degree distributions",
        ("dataset", "in-degree (bin center)", "#users"),
    )
    for family in ("news", "twitter"):
        ds = ctx.default_dataset(family)
        degrees, counts = in_degree_histogram(ds.graph)
        centers, binned = log_binned_histogram(
            degrees, counts, bins_per_decade=bins_per_decade
        )
        for center, count in zip(centers, binned):
            table.add_row(ds.name, float(center), int(count))
    table.add_note(
        "paper shape: twitter heavy-tailed (hubs with huge in-degree); "
        "news falls off fast"
    )
    return table


def _sweep(
    ctx: ExperimentContext,
    *,
    axis: str,
    family: str,
    values,
    dataset_for,
    query_params,
) -> List[Dict[str, object]]:
    """Shared Figures 5-7 machinery: run all three methods per point.

    Returns one record per sweep value with mean execution time per method
    and mean RR sets loaded for the two indexes.
    """
    records: List[Dict[str, object]] = []
    for value in values:
        ds: Dataset = dataset_for(value)
        params = query_params(value)
        queries = workload_queries(ctx, ds, **params)
        # Per-query timing is the measurand (the paper's execution-time
        # figures): disable both readers' decoded caches so every query
        # pays its own read + decode instead of hitting memory.
        rr = ctx.open_rr(ds, prefix_cache_keywords=0)
        irr = ctx.open_irr(ds, decode_cache_partitions=0)
        try:
            times = {"WRIS": [], "RR": [], "IRR": []}
            loaded = {"RR": [], "IRR": []}
            for qi, query in enumerate(queries):
                wris_answer = wris_query(
                    ds.ic_model,
                    ds.profiles,
                    query,
                    policy=ctx.scale.policy,
                    rng=optional_seed(
                        ctx.scale.seed, _stable_salt((axis, ds.name, value, qi))
                    ),
                )
                rr_answer = rr.query(query)
                irr_answer = irr.query(query)
                times["WRIS"].append(wris_answer.stats.elapsed_seconds)
                times["RR"].append(rr_answer.stats.elapsed_seconds)
                times["IRR"].append(irr_answer.stats.elapsed_seconds)
                loaded["RR"].append(rr_answer.stats.rr_sets_loaded)
                loaded["IRR"].append(irr_answer.stats.rr_sets_loaded)
            records.append(
                {
                    "dataset": ds.name,
                    "value": value,
                    "wris_time": float(np.mean(times["WRIS"])),
                    "rr_time": float(np.mean(times["RR"])),
                    "irr_time": float(np.mean(times["IRR"])),
                    "rr_loaded": float(np.mean(loaded["RR"])),
                    "irr_loaded": float(np.mean(loaded["IRR"])),
                }
            )
        finally:
            rr.close()
            irr.close()
    return records


def _records_to_table(title: str, axis_name: str, records) -> Table:
    table = Table(
        title,
        (
            "dataset",
            axis_name,
            "WRIS time (s)",
            "RR time (s)",
            "IRR time (s)",
            "RR sets loaded (RR)",
            "RR sets loaded (IRR)",
        ),
    )
    for rec in records:
        table.add_row(
            rec["dataset"],
            rec["value"],
            rec["wris_time"],
            rec["rr_time"],
            rec["irr_time"],
            rec["rr_loaded"],
            rec["irr_loaded"],
        )
    table.add_note(
        "paper shape: RR/IRR orders of magnitude below WRIS; "
        "IRR loads fewer sets than RR on twitter, converges to RR on news"
    )
    return table


def run_figure5(ctx: ExperimentContext) -> Table:
    """Vary the seed budget Q.k (Figure 5)."""
    records = []
    for family in ("news", "twitter"):
        ds = ctx.default_dataset(family)
        records.extend(
            _sweep(
                ctx,
                axis="fig5",
                family=family,
                values=ctx.scale.k_values,
                dataset_for=lambda _v, ds=ds: ds,
                query_params=lambda k: {"k": k},
            )
        )
    return _records_to_table("Figure 5: varying the seed set size Q.k", "Q.k", records)


def run_figure6(ctx: ExperimentContext) -> Table:
    """Vary the number of query keywords |Q.T| (Figure 6)."""
    records = []
    for family in ("news", "twitter"):
        ds = ctx.default_dataset(family)
        records.extend(
            _sweep(
                ctx,
                axis="fig6",
                family=family,
                values=ctx.scale.keyword_lengths,
                dataset_for=lambda _v, ds=ds: ds,
                query_params=lambda length: {"length": length},
            )
        )
    return _records_to_table(
        "Figure 6: varying the query keyword count |Q.T|", "|Q.T|", records
    )


def run_figure7(ctx: ExperimentContext) -> Table:
    """Vary the graph size |V| (Figure 7)."""
    records = []
    for family, indices in (
        ("news", ctx.scale.news_sizes),
        ("twitter", ctx.scale.twitter_sizes),
    ):
        records.extend(
            _sweep(
                ctx,
                axis="fig7",
                family=family,
                values=indices,
                dataset_for=lambda idx, family=family: ctx.dataset(family, idx),
                query_params=lambda _idx: {},
            )
        )
    return _records_to_table("Figure 7: varying the graph size |V|", "size idx", records)
