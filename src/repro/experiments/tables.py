"""Table experiments (Section 6, Tables 2-8).

Every ``run_table*`` function takes an :class:`ExperimentContext` and
returns a :class:`~repro.experiments.reporting.Table` whose rows mirror the
paper's layout.  Absolute numbers differ (scaled datasets, pure Python —
see DESIGN.md); the *shapes* asserted in EXPERIMENTS.md are what the
benches check.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.query import KBTIMQuery
from repro.core.ris import ris_query
from repro.core.wris import wris_query
from repro.datasets.synthetic import Dataset
from repro.datasets.workload import make_workload
from repro.experiments.harness import ExperimentContext, _stable_salt
from repro.experiments.reporting import Table
from repro.graph.stats import summarize
from repro.propagation.simulate import estimate_spread
from repro.storage.compression import Codec
from repro.utils.rng import optional_seed

__all__ = [
    "run_table2",
    "run_table3",
    "run_table4",
    "run_table5",
    "run_table6",
    "run_table7",
    "run_table8",
    "workload_queries",
]


def workload_queries(
    ctx: ExperimentContext,
    dataset: Dataset,
    *,
    length: Optional[int] = None,
    k: Optional[int] = None,
) -> List[KBTIMQuery]:
    """The context's deterministic query batch for one (dataset, point)."""
    scale = ctx.scale
    length = length if length is not None else scale.default_length
    k = k if k is not None else scale.default_k
    rng = optional_seed(scale.seed, _stable_salt((dataset.name, length, k)))
    workload = make_workload(
        dataset.profiles,
        length=length,
        k=k,
        n_queries=scale.queries_per_point,
        rng=rng,
    )
    return list(workload)


# ----------------------------------------------------------------------
# Table 2: dataset statistics
# ----------------------------------------------------------------------
def run_table2(ctx: ExperimentContext) -> Table:
    """Dataset statistics (the scaled analogue of the paper's Table 2)."""
    table = Table(
        "Table 2: dataset statistics (scaled families)",
        ("dataset", "#users", "#edges", "avg degree", "max in-deg"),
    )
    for family, indices in (
        ("news", ctx.scale.news_sizes),
        ("twitter", ctx.scale.twitter_sizes),
    ):
        for idx in indices:
            ds = ctx.dataset(family, idx)
            s = summarize(ds.graph)
            table.add_row(ds.name, s.n_users, s.n_edges, s.avg_degree, s.max_in_degree)
    table.add_note("paper: news 0.2M-1.4M users, twitter 10M-40M users")
    return table


# ----------------------------------------------------------------------
# Table 3: theta-hat vs theta index cost (news family)
# ----------------------------------------------------------------------
def run_table3(ctx: ExperimentContext) -> Table:
    """Disk space and build time under θ̂_w (Lemma 3) vs θ_w (Lemma 4).

    Run with an *uncapped* policy so the bound contrast is measurable
    (capping would clamp both variants to the same sample counts).
    """
    table = Table(
        "Table 3: index cost with theta_hat_w vs theta_w (news family)",
        (
            "dataset",
            "RR size θ̂ (KB)",
            "RR size θ (KB)",
            "IRR size θ̂ (KB)",
            "IRR size θ (KB)",
            "RR time θ̂ (s)",
            "RR time θ (s)",
            "IRR time θ̂ (s)",
            "IRR time θ (s)",
        ),
    )
    for idx in ctx.scale.news_sizes:
        ds = ctx.dataset("news", idx)
        reports = {}
        for kind in ("rr", "irr"):
            for hat in (True, False):
                reports[(kind, hat)] = ctx.build_index(
                    ds, kind=kind, use_theta_hat=hat
                )
        table.add_row(
            ds.name,
            reports[("rr", True)].file_bytes / 1024,
            reports[("rr", False)].file_bytes / 1024,
            reports[("irr", True)].file_bytes / 1024,
            reports[("irr", False)].file_bytes / 1024,
            reports[("rr", True)].seconds,
            reports[("rr", False)].seconds,
            reports[("irr", True)].seconds,
            reports[("irr", False)].seconds,
        )
    table.add_note(
        "paper shape: θ̂_w indexes ~9-10x larger and slower to build (Table 3)"
    )
    return table


# ----------------------------------------------------------------------
# Table 4: compressed vs uncompressed index cost
# ----------------------------------------------------------------------
def run_table4(ctx: ExperimentContext) -> Table:
    """Disk space and build time, RAW vs PFoR codec, both families."""
    table = Table(
        "Table 4: index cost, uncompressed vs compressed (theta_w)",
        (
            "dataset",
            "RR raw (KB)",
            "IRR raw (KB)",
            "RR pfor (KB)",
            "IRR pfor (KB)",
            "RR raw (s)",
            "IRR raw (s)",
            "RR pfor (s)",
            "IRR pfor (s)",
        ),
    )
    for family, indices in (
        ("news", ctx.scale.news_sizes),
        ("twitter", ctx.scale.twitter_sizes),
    ):
        for idx in indices:
            ds = ctx.dataset(family, idx)
            reports = {}
            for kind in ("rr", "irr"):
                for codec in (Codec.RAW, Codec.PFOR):
                    reports[(kind, codec)] = ctx.build_index(
                        ds, kind=kind, codec=codec
                    )
            table.add_row(
                ds.name,
                reports[("rr", Codec.RAW)].file_bytes / 1024,
                reports[("irr", Codec.RAW)].file_bytes / 1024,
                reports[("rr", Codec.PFOR)].file_bytes / 1024,
                reports[("irr", Codec.PFOR)].file_bytes / 1024,
                reports[("rr", Codec.RAW)].seconds,
                reports[("irr", Codec.RAW)].seconds,
                reports[("rr", Codec.PFOR)].seconds,
                reports[("irr", Codec.PFOR)].seconds,
            )
    table.add_note("paper shape: ~40-50% space reduction, build time comparable")
    return table


# ----------------------------------------------------------------------
# Table 5: sum of theta_w and mean RR-set size vs graph size
# ----------------------------------------------------------------------
def run_table5(ctx: ExperimentContext) -> Table:
    """Σθ_w grows with |V| while mean RR-set size falls with density."""
    table = Table(
        "Table 5: sum of theta_w and mean RR-set size vs graph size",
        ("dataset", "|V|", "sum theta_w", "mean RR size"),
    )
    for family, indices in (
        ("news", ctx.scale.news_sizes),
        ("twitter", ctx.scale.twitter_sizes),
    ):
        for idx in indices:
            ds = ctx.dataset(family, idx)
            tables = ctx.keyword_tables(ds)
            total_theta = sum(t.theta for t in tables.values())
            sizes = [
                len(rr) for t in tables.values() for rr in t.rr_sets
            ]
            table.add_row(
                ds.name,
                ds.graph.n,
                total_theta,
                float(np.mean(sizes)) if sizes else 0.0,
            )
    table.add_note("paper shape: theta grows with |V|; RR size falls as degree falls")
    return table


# ----------------------------------------------------------------------
# Table 6: IRR I/O count vs Q.k
# ----------------------------------------------------------------------
def run_table6(ctx: ExperimentContext) -> Table:
    """Number of logical I/Os issued by IRR as the seed budget grows."""
    table = Table(
        "Table 6: number of I/Os for IRR when varying Q.k",
        ("dataset",) + tuple(f"k={k}" for k in ctx.scale.k_values),
    )
    for family in ("news", "twitter"):
        ds = ctx.default_dataset(family)
        with ctx.open_irr(ds) as index:
            row: List[object] = [ds.name]
            for k in ctx.scale.k_values:
                ios = []
                for query in workload_queries(ctx, ds, k=k):
                    answer = index.query(query)
                    ios.append(answer.stats.io.read_calls)
                row.append(float(np.mean(ios)))
            table.add_row(*row)
    table.add_note("paper shape: I/O count grows (super-linearly) with Q.k")
    return table


# ----------------------------------------------------------------------
# Table 7: influence spread parity across methods
# ----------------------------------------------------------------------
def run_table7(ctx: ExperimentContext, *, include_theta_hat: bool = True) -> Table:
    """Expected influence of the seed sets returned by each method.

    Seed sets are evaluated by *independent* forward Monte-Carlo
    simulation (Eqn. 2) so the comparison does not reuse any method's own
    samples.  The paper's shape: all methods statistically tie.
    """
    headers = ["dataset", "Q.k", "WRIS"]
    if include_theta_hat:
        headers.append("RR(θ̂)")
    headers += ["RR", "IRR"]
    table = Table("Table 7: influence spread when varying Q.k", tuple(headers))

    for family in ("news", "twitter"):
        ds = ctx.default_dataset(family)
        hat = include_theta_hat and family == "news"  # paper: news only
        rr = ctx.open_rr(ds)
        irr = ctx.open_irr(ds)
        rr_hat = ctx.open_rr(ds, use_theta_hat=True) if hat else None
        try:
            for k in ctx.scale.k_values:
                sums: Dict[str, List[float]] = {}
                for qi, query in enumerate(workload_queries(ctx, ds, k=k)):
                    weights = ds.profiles.phi_vector(query.keywords)
                    answers = {
                        "WRIS": wris_query(
                            ds.ic_model,
                            ds.profiles,
                            query,
                            policy=ctx.scale.policy,
                            rng=optional_seed(
                                ctx.scale.seed, _stable_salt((ds.name, k, qi))
                            ),
                        ),
                        "RR": rr.query(query),
                        "IRR": irr.query(query),
                    }
                    if rr_hat is not None:
                        answers["RR(θ̂)"] = rr_hat.query(query)
                    for method, answer in answers.items():
                        estimate = estimate_spread(
                            ds.ic_model,
                            answer.seeds,
                            n_samples=ctx.scale.mc_samples,
                            weights=weights,
                            rng=optional_seed(
                                ctx.scale.seed,
                                _stable_salt((ds.name, k, qi, "mc")),
                            ),
                        )
                        sums.setdefault(method, []).append(estimate.mean)
                row: List[object] = [ds.name, k, float(np.mean(sums["WRIS"]))]
                if include_theta_hat:
                    row.append(
                        float(np.mean(sums["RR(θ̂)"])) if hat else None
                    )
                row += [float(np.mean(sums["RR"])), float(np.mean(sums["IRR"]))]
                table.add_row(*row)
        finally:
            rr.close()
            irr.close()
            if rr_hat is not None:
                rr_hat.close()
    table.add_note("paper shape: all methods return near-identical influence")
    return table


# ----------------------------------------------------------------------
# Table 8: example query results (targeted vs untargeted)
# ----------------------------------------------------------------------
def run_table8(
    ctx: ExperimentContext,
    *,
    keywords: Sequence[str] = ("software", "journal"),
    top_n: int = 8,
) -> Table:
    """Top seeds per keyword under WRIS(IC)/WRIS(LT) vs untargeted RIS.

    Seeds are labelled ``user<id>(<dominant topic>)`` so relevance is
    visible: targeted methods should surface seeds whose dominant topic
    matches the query keyword; RIS returns one global seed set regardless.
    """
    table = Table(
        "Table 8: example KB-TIM query results (top seeds)",
        ("dataset", "method", "keyword", "seeds"),
    )

    def label(ds: Dataset, user: int) -> str:
        topic_ids, tfs = ds.profiles.topics_of(user)
        if len(topic_ids) == 0:
            return f"user{user}(-)"
        dominant = int(topic_ids[int(np.argmax(tfs))])
        return f"user{user}({ds.topics.name(dominant)})"

    for family in ("news", "twitter"):
        ds = ctx.default_dataset(family)
        for keyword in keywords:
            query = KBTIMQuery((keyword,), top_n)
            for method, model in (("WRIS(IC)", ds.ic_model), ("WRIS(LT)", ds.lt_model)):
                answer = wris_query(
                    model,
                    ds.profiles,
                    query,
                    policy=ctx.scale.policy,
                    rng=optional_seed(
                        ctx.scale.seed, _stable_salt((ds.name, method, keyword))
                    ),
                )
                table.add_row(
                    ds.name,
                    method,
                    keyword,
                    " ".join(label(ds, s) for s in answer.seeds),
                )
        ris_answer = ris_query(
            ds.ic_model,
            top_n,
            policy=ctx.scale.policy,
            rng=optional_seed(ctx.scale.seed, _stable_salt((ds.name, "ris"))),
        )
        table.add_row(
            ds.name,
            "RIS",
            "N.A.",
            " ".join(label(ds, s) for s in ris_answer.seeds),
        )
    table.add_note(
        "paper shape: targeted seeds are keyword-relevant; RIS ignores keywords"
    )
    return table
