"""Experiment harness: one entry point per table and figure of Section 6."""

from repro.experiments.reporting import Table
from repro.experiments.harness import ExperimentContext, ExperimentScale
from repro.experiments.tables import (
    run_table2,
    run_table3,
    run_table4,
    run_table5,
    run_table6,
    run_table7,
    run_table8,
)
from repro.experiments.figures import (
    run_figure4,
    run_figure5,
    run_figure6,
    run_figure7,
)

__all__ = [
    "Table",
    "ExperimentContext",
    "ExperimentScale",
    "run_table2",
    "run_table3",
    "run_table4",
    "run_table5",
    "run_table6",
    "run_table7",
    "run_table8",
    "run_figure4",
    "run_figure5",
    "run_figure6",
    "run_figure7",
]
