"""Result tables: structured rows + ASCII rendering + CSV export.

Every experiment returns a :class:`Table`, so benches can both print the
paper-shaped rows and persist them for EXPERIMENTS.md.
"""

from __future__ import annotations

import csv
import os
from dataclasses import dataclass, field
from typing import List, Tuple, Union

__all__ = ["Table", "format_value"]

Cell = Union[str, int, float, None]


def format_value(value: Cell, *, precision: int = 3) -> str:
    """Human-friendly cell rendering (SI-ish floats, thousands grouping)."""
    if value is None:
        return "-"
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, int):
        return f"{value:,}"
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1e6 or magnitude < 1e-3:
            return f"{value:.{precision}e}"
        return f"{value:,.{precision}f}".rstrip("0").rstrip(".")
    return str(value)


@dataclass
class Table:
    """A titled grid of results with optional footnotes."""

    title: str
    headers: Tuple[str, ...]
    rows: List[Tuple[Cell, ...]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, *cells: Cell) -> None:
        """Append one row; must match the header width."""
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append(tuple(cells))

    def add_note(self, note: str) -> None:
        """Append a footnote rendered under the grid."""
        self.notes.append(note)

    def render(self, *, precision: int = 3) -> str:
        """ASCII rendering with column alignment."""
        formatted = [
            [format_value(c, precision=precision) for c in row] for row in self.rows
        ]
        widths = [
            max(len(h), *(len(r[i]) for r in formatted)) if formatted else len(h)
            for i, h in enumerate(self.headers)
        ]
        sep = "-+-".join("-" * w for w in widths)
        lines = [self.title, "=" * max(len(self.title), len(sep))]
        lines.append(" | ".join(h.ljust(w) for h, w in zip(self.headers, widths)))
        lines.append(sep)
        for row in formatted:
            lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
        for note in self.notes:
            lines.append(f"  * {note}")
        return "\n".join(lines)

    def to_csv(self, path: str) -> None:
        """Write headers + raw (unformatted) rows as CSV."""
        os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
        with open(path, "w", newline="", encoding="utf-8") as fh:
            writer = csv.writer(fh)
            writer.writerow(self.headers)
            writer.writerows(self.rows)

    def column(self, header: str) -> List[Cell]:
        """All values of one column (for assertions in tests/benches)."""
        try:
            idx = self.headers.index(header)
        except ValueError:
            raise KeyError(f"no column {header!r} in table {self.title!r}") from None
        return [row[idx] for row in self.rows]

    def __str__(self) -> str:
        return self.render()
