"""Shared experiment plumbing: scales, dataset/index caching.

The paper's evaluation re-uses the same datasets and indexes across many
measurements; :class:`ExperimentContext` mirrors that by memoising

* generated datasets per ``(family, size_index)``,
* per-keyword sample tables per dataset (and θ variant),
* built index files per ``(dataset, format, codec, θ variant)``

inside one working directory, so a bench sweep pays each expensive build
exactly once — like the paper's offline phase.

:class:`ExperimentScale` bundles every knob that trades fidelity for
runtime.  ``SMOKE`` keeps the full pipeline under a few seconds for CI;
``DEFAULT`` is what the benchmark suite runs (minutes, paper-shaped).
"""

from __future__ import annotations

import os
import shutil
import tempfile
import time
import zlib
from dataclasses import dataclass, replace
from typing import Dict, Optional, Tuple

from repro.core.irr_index import IRRIndex, IRRIndexBuilder
from repro.core.offline import KeywordTable
from repro.core.rr_index import BuildReport, RRIndex, RRIndexBuilder
from repro.core.theta import ThetaPolicy
from repro.datasets.synthetic import Dataset, news_dataset, twitter_dataset
from repro.storage.compression import Codec
from repro.utils.rng import optional_seed

__all__ = ["ExperimentScale", "ExperimentContext"]


def _stable_salt(key: object) -> int:
    """Process-independent salt (``hash()`` is randomised per process)."""
    return zlib.crc32(repr(key).encode("utf-8"))


@dataclass(frozen=True)
class ExperimentScale:
    """All knobs of one experiment campaign.

    See DESIGN.md's substitution table for why θ is capped: the cap is
    shared by every method, so comparisons stay fair while pure-Python
    runtimes stay interactive.
    """

    name: str
    news_sizes: Tuple[int, ...]
    twitter_sizes: Tuple[int, ...]
    n_topics: int
    policy: ThetaPolicy
    delta: int
    k_values: Tuple[int, ...]
    keyword_lengths: Tuple[int, ...]
    default_k: int
    default_length: int
    queries_per_point: int
    mc_samples: int
    seed: int = 810  # PVLDB 8(10)

    @staticmethod
    def smoke() -> "ExperimentScale":
        """Seconds-scale settings for tests and CI smoke runs."""
        return ExperimentScale(
            name="smoke",
            news_sizes=(0,),
            twitter_sizes=(0,),
            n_topics=8,
            policy=ThetaPolicy(epsilon=1.0, K=50, cap=400),
            delta=32,
            k_values=(5, 10),
            keyword_lengths=(1, 2),
            default_k=5,
            default_length=2,
            queries_per_point=2,
            mc_samples=30,
        )

    @staticmethod
    def default() -> "ExperimentScale":
        """The benchmark-suite settings (paper-shaped, minutes overall)."""
        return ExperimentScale(
            name="default",
            news_sizes=(0, 1, 2, 3),
            twitter_sizes=(0, 1, 2, 3),
            n_topics=16,
            # cap bounds the offline per-keyword sampling budget; the
            # online methods sample their full Theorem-2 bound at query
            # time (that is the cost the indexes exist to remove), with
            # online_cap only as a runaway guard.
            policy=ThetaPolicy(epsilon=0.5, K=100, cap=1200, online_cap=40_000),
            delta=100,
            k_values=(10, 20, 30, 40, 50),
            keyword_lengths=(1, 2, 3, 4, 5, 6),
            default_k=30,
            default_length=5,
            queries_per_point=2,
            mc_samples=80,
        )

    def with_policy(self, policy: ThetaPolicy) -> "ExperimentScale":
        """A copy with a different θ policy (used by Table 3)."""
        return replace(self, policy=policy)


class ExperimentContext:
    """Memoising workspace for one experiment campaign."""

    def __init__(
        self,
        scale: Optional[ExperimentScale] = None,
        *,
        workdir: Optional[str] = None,
    ) -> None:
        self.scale = scale if scale is not None else ExperimentScale.default()
        self._owns_workdir = workdir is None
        self.workdir = workdir if workdir is not None else tempfile.mkdtemp(
            prefix="kbtim-exp-"
        )
        os.makedirs(self.workdir, exist_ok=True)
        self._datasets: Dict[Tuple[str, int], Dataset] = {}
        self._tables: Dict[Tuple[str, bool], Dict[str, KeywordTable]] = {}
        self._sampling_seconds: Dict[Tuple[str, bool], float] = {}
        self._builds: Dict[Tuple[str, str, int, bool], BuildReport] = {}

    # ------------------------------------------------------------------
    # datasets
    # ------------------------------------------------------------------
    def dataset(self, family: str, size_index: int) -> Dataset:
        """Generate (or fetch) one dataset of the family at a scale size."""
        key = (family, size_index)
        if key not in self._datasets:
            seed = optional_seed(self.scale.seed, _stable_salt(key))
            if family == "news":
                self._datasets[key] = news_dataset(
                    size_index, n_topics=self.scale.n_topics, seed=seed
                )
            elif family == "twitter":
                self._datasets[key] = twitter_dataset(
                    size_index, n_topics=self.scale.n_topics, seed=seed
                )
            else:
                raise ValueError(f"unknown dataset family {family!r}")
        return self._datasets[key]

    def default_dataset(self, family: str) -> Dataset:
        """The family's default size (index 0 for twitter, 1 for news —
        mirroring the paper's highlighted defaults t10M / n0.6M)."""
        if family == "twitter":
            return self.dataset("twitter", min(self.scale.twitter_sizes))
        return self.dataset(
            "news", self.scale.news_sizes[min(1, len(self.scale.news_sizes) - 1)]
        )

    # ------------------------------------------------------------------
    # sampling + index builds
    # ------------------------------------------------------------------
    def keyword_tables(
        self, dataset: Dataset, *, use_theta_hat: bool = False
    ) -> Dict[str, KeywordTable]:
        """Per-keyword offline sample tables (memoised per dataset)."""
        key = (dataset.name, use_theta_hat)
        if key not in self._tables:
            builder = RRIndexBuilder(
                dataset.ic_model,
                dataset.profiles,
                policy=self.scale.policy,
                use_theta_hat=use_theta_hat,
                rng=optional_seed(self.scale.seed, _stable_salt(key)),
            )
            started = time.perf_counter()
            self._tables[key] = builder.sample()
            self._sampling_seconds[key] = time.perf_counter() - started
        return self._tables[key]

    def index_path(
        self,
        dataset: Dataset,
        *,
        kind: str,
        codec: Codec = Codec.PFOR,
        use_theta_hat: bool = False,
    ) -> str:
        """File path for one built index variant."""
        suffix = "hat" if use_theta_hat else "std"
        return os.path.join(
            self.workdir,
            f"{dataset.name}-{kind}-{codec.name.lower()}-{suffix}.idx",
        )

    def build_index(
        self,
        dataset: Dataset,
        *,
        kind: str,
        codec: Codec = Codec.PFOR,
        use_theta_hat: bool = False,
    ) -> BuildReport:
        """Build (or fetch) one index variant; returns its build report."""
        key = (dataset.name, kind, codec.value, use_theta_hat)
        if key in self._builds:
            return self._builds[key]
        tables = self.keyword_tables(dataset, use_theta_hat=use_theta_hat)
        path = self.index_path(
            dataset, kind=kind, codec=codec, use_theta_hat=use_theta_hat
        )
        if kind == "rr":
            builder = RRIndexBuilder(
                dataset.ic_model,
                dataset.profiles,
                policy=self.scale.policy,
                codec=codec,
                use_theta_hat=use_theta_hat,
            )
        elif kind == "irr":
            builder = IRRIndexBuilder(
                dataset.ic_model,
                dataset.profiles,
                policy=self.scale.policy,
                codec=codec,
                use_theta_hat=use_theta_hat,
                delta=self.scale.delta,
            )
        else:
            raise ValueError(f"unknown index kind {kind!r}")
        report = builder.build(path, tables=tables)
        # Each index variant would pay its own sampling pass in a real
        # deployment (the paper's build times include it); fold the
        # memoised pass back into the report so Tables 3-4 are faithful.
        sampling = self._sampling_seconds.get((dataset.name, use_theta_hat), 0.0)
        report = replace(report, seconds=report.seconds + sampling)
        self._builds[key] = report
        return report

    def open_rr(
        self,
        dataset: Dataset,
        *,
        prefix_cache_keywords: Optional[int] = None,
        **kwargs,
    ) -> RRIndex:
        """Build-if-needed and open the RR index of ``dataset``.

        ``prefix_cache_keywords=0`` opens the reader with the decoded-
        prefix cache disabled — required wherever the experiment measures
        *per-query* cold cost (the paper's figures), since the default
        cache would otherwise serve repeated keywords from memory.
        """
        self.build_index(dataset, kind="rr", **kwargs)
        reader_kwargs = {}
        if prefix_cache_keywords is not None:
            reader_kwargs["prefix_cache_keywords"] = prefix_cache_keywords
        return RRIndex(
            self.index_path(dataset, kind="rr", **kwargs), **reader_kwargs
        )

    def open_server_pool(
        self,
        dataset: Dataset,
        *,
        n_workers: int = 4,
        kind: str = "thread",
        **pool_kwargs,
    ):
        """Build-if-needed and open a sharded serving pool over the RR index.

        The serving-tier benchmarks (thread/process sweeps, replay runs)
        go through here so they share the memoised index build with
        every other experiment.  ``kind`` selects the worker model:
        ``"thread"`` opens a :class:`~repro.core.server.ServerPool`
        (N readers in this process, one shared buffer pool),
        ``"process"`` a
        :class:`~repro.core.process_pool.ProcessServerPool` (N worker
        processes, GIL-free warm serving), ``"supervised"`` a
        :class:`~repro.core.supervision.SupervisedServerPool` (worker
        processes behind self-healing supervisors with deadlines and
        admission control).  ``pool_kwargs`` pass through to the chosen
        pool class.

        Raises
        ------
        ValueError
            On an unknown ``kind``.
        """
        from repro.core.process_pool import ProcessServerPool
        from repro.core.server import ServerPool
        from repro.core.supervision import SupervisedServerPool

        self.build_index(dataset, kind="rr")
        path = self.index_path(dataset, kind="rr")
        if kind == "thread":
            return ServerPool(path, n_workers=n_workers, **pool_kwargs)
        if kind == "process":
            return ProcessServerPool(path, n_workers=n_workers, **pool_kwargs)
        if kind == "supervised":
            return SupervisedServerPool(path, n_workers=n_workers, **pool_kwargs)
        raise ValueError(f"unknown server pool kind {kind!r}")

    def open_irr(
        self,
        dataset: Dataset,
        *,
        decode_cache_partitions: Optional[int] = None,
        **kwargs,
    ) -> IRRIndex:
        """Build-if-needed and open the IRR index of ``dataset``.

        ``decode_cache_partitions=0`` disables the decoded-partition
        memo — the IRR counterpart of ``open_rr``'s cache switch, for
        experiments measuring per-query cold cost.
        """
        self.build_index(dataset, kind="irr", **kwargs)
        reader_kwargs = {}
        if decode_cache_partitions is not None:
            reader_kwargs["decode_cache_partitions"] = decode_cache_partitions
        return IRRIndex(
            self.index_path(dataset, kind="irr", **kwargs), **reader_kwargs
        )

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Remove the working directory if the context created it."""
        if self._owns_workdir and os.path.isdir(self.workdir):
            shutil.rmtree(self.workdir, ignore_errors=True)

    def __enter__(self) -> "ExperimentContext":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
