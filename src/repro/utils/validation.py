"""Small argument-validation helpers.

These exist so that public entry points fail fast with a clear message
instead of deep inside numpy with an opaque broadcasting error.  Each
helper returns the (possibly coerced) value so it can be used inline:

    k = check_positive_int("k", k)
"""

from __future__ import annotations

from typing import Union

Number = Union[int, float]


def check_positive_int(name: str, value: int) -> int:
    """Require ``value`` to be an integer >= 1 and return it as ``int``."""
    if isinstance(value, bool) or not isinstance(value, (int,)):
        raise TypeError(f"{name} must be an int, got {type(value).__name__}")
    if value < 1:
        raise ValueError(f"{name} must be >= 1, got {value}")
    return int(value)


def check_nonnegative_int(name: str, value: int) -> int:
    """Require ``value`` to be an integer >= 0 and return it as ``int``."""
    if isinstance(value, bool) or not isinstance(value, (int,)):
        raise TypeError(f"{name} must be an int, got {type(value).__name__}")
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value}")
    return int(value)


def check_positive(name: str, value: Number) -> float:
    """Require ``value`` to be a finite number > 0 and return it as ``float``."""
    value = _check_number(name, value)
    if not value > 0:
        raise ValueError(f"{name} must be > 0, got {value}")
    return value


def check_nonnegative(name: str, value: Number) -> float:
    """Require ``value`` to be a finite number >= 0 and return it as ``float``."""
    value = _check_number(name, value)
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value}")
    return value


def check_fraction(name: str, value: Number, *, inclusive: bool = False) -> float:
    """Require ``value`` to lie in ``(0, 1)`` (or ``[0, 1]`` if inclusive)."""
    value = _check_number(name, value)
    if inclusive:
        if not 0.0 <= value <= 1.0:
            raise ValueError(f"{name} must be in [0, 1], got {value}")
    else:
        if not 0.0 < value < 1.0:
            raise ValueError(f"{name} must be in (0, 1), got {value}")
    return value


def _check_number(name: str, value: Number) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise TypeError(f"{name} must be a number, got {type(value).__name__}")
    value = float(value)
    if value != value or value in (float("inf"), float("-inf")):
        raise ValueError(f"{name} must be finite, got {value}")
    return value
