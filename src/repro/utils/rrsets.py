"""Flat-CSR container for a batch of RR sets.

The batched samplers assemble all θ RR sets of a call into one pointer /
payload pair; historically that pair was immediately split back into a
Python list of per-set arrays, only for the downstream consumers
(coverage instances, index builders, record encoders) to re-concatenate
it.  :class:`FlatRRSets` keeps the flat layout end to end while remaining
a drop-in ``Sequence[np.ndarray]``: indexing and iteration yield zero-copy
views, so code written against a list of arrays keeps working, and code
that knows about the CSR form (``CoverageInstance``, ``_invert``) can
take ``ptr``/``vertices`` directly.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Iterator, List, Union

import numpy as np

__all__ = ["FlatRRSets"]


class FlatRRSets(Sequence):
    """θ RR sets stored back to back in one CSR pointer/payload pair.

    ``vertices[ptr[i]:ptr[i+1]]`` is the i-th RR set (sorted vertex ids).
    Instances are immutable by convention; the arrays are shared, never
    copied, by every view handed out.
    """

    __slots__ = ("ptr", "vertices")

    def __init__(self, ptr: np.ndarray, vertices: np.ndarray) -> None:
        self.ptr = np.ascontiguousarray(ptr, dtype=np.int64)
        self.vertices = np.ascontiguousarray(vertices, dtype=np.int64)
        if self.ptr.ndim != 1 or len(self.ptr) < 1:
            raise ValueError("ptr must be a 1-D array of length >= 1")
        if int(self.ptr[-1]) != len(self.vertices):
            raise ValueError(
                f"ptr[-1] ({int(self.ptr[-1])}) must equal the payload "
                f"length ({len(self.vertices)})"
            )

    # ------------------------------------------------------------------
    # Sequence protocol (list-of-arrays compatibility)
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.ptr) - 1

    def __getitem__(
        self, index: Union[int, slice]
    ) -> Union[np.ndarray, List[np.ndarray]]:
        if isinstance(index, slice):
            return [self[i] for i in range(*index.indices(len(self)))]
        n = len(self)
        if index < 0:
            index += n
        if not 0 <= index < n:
            raise IndexError(f"RR set index {index} out of range [0, {n})")
        return self.vertices[self.ptr[index] : self.ptr[index + 1]]

    def __iter__(self) -> Iterator[np.ndarray]:
        bounds = self.ptr.tolist()
        vertices = self.vertices
        for i in range(len(bounds) - 1):
            yield vertices[bounds[i] : bounds[i + 1]]

    # ------------------------------------------------------------------
    # CSR-aware helpers
    # ------------------------------------------------------------------
    def sizes(self) -> np.ndarray:
        """Per-set cardinalities (length ``len(self)``)."""
        return np.diff(self.ptr)

    @property
    def total_size(self) -> int:
        """Summed cardinality of all sets (the payload length)."""
        return len(self.vertices)

    @classmethod
    def concatenate(cls, parts: Sequence["FlatRRSets"]) -> "FlatRRSets":
        """Stack several batches into one (used by the chunked kernels)."""
        if not parts:
            return cls(np.zeros(1, dtype=np.int64), np.empty(0, dtype=np.int64))
        if len(parts) == 1:
            return parts[0]
        chunks = [np.zeros(1, dtype=np.int64)]
        offset = 0
        for part in parts:
            chunks.append(part.ptr[1:] + offset)
            offset += int(part.ptr[-1])
        return cls(
            np.concatenate(chunks),
            np.concatenate([part.vertices for part in parts]),
        )

    def __repr__(self) -> str:
        return f"FlatRRSets(n_sets={len(self)}, total_size={self.total_size})"
