"""Random-number-generator plumbing.

The library never touches global random state.  Every stochastic function
accepts a ``rng`` argument that may be

* ``None`` — a fresh, OS-seeded generator is created,
* an ``int`` — used as a deterministic seed,
* a ``numpy.random.Generator`` — used as-is.

``as_rng`` normalises all three into a ``numpy.random.Generator`` so call
sites stay one-liners.  ``spawn_rngs`` derives independent child generators
for parallel or per-keyword sampling, so that adding a keyword to an index
does not perturb the streams of the others.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

RngLike = Union[None, int, np.random.Generator]


def as_rng(rng: RngLike = None) -> np.random.Generator:
    """Return a ``numpy.random.Generator`` for ``rng``.

    Parameters
    ----------
    rng:
        ``None`` for OS entropy, an integer seed, or an existing generator
        (returned unchanged).
    """
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, (int, np.integer)):
        if rng < 0:
            raise ValueError(f"seed must be non-negative, got {rng}")
        return np.random.default_rng(int(rng))
    raise TypeError(f"rng must be None, int or numpy Generator, got {type(rng)!r}")


def spawn_rngs(rng: RngLike, n: int) -> Sequence[np.random.Generator]:
    """Derive ``n`` statistically independent child generators.

    Children are derived via ``Generator.spawn`` (NumPy >= 1.25) or, as a
    fallback, by drawing 64-bit seeds from the parent, which keeps the same
    reproducibility contract on older NumPy versions.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    parent = as_rng(rng)
    if hasattr(parent, "spawn"):
        return list(parent.spawn(n))
    seeds = parent.integers(0, 2**63 - 1, size=n, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]


def derive_seed(rng: RngLike) -> int:
    """Draw a single 63-bit seed from ``rng`` (for handing to subprocesses)."""
    return int(as_rng(rng).integers(0, 2**63 - 1, dtype=np.int64))


def optional_seed(seed: Optional[int], salt: int) -> Optional[int]:
    """Combine ``seed`` with ``salt`` deterministically, preserving ``None``.

    Used by dataset builders that need several reproducible-but-distinct
    streams (graph topology, profiles, workload) from one user-facing seed.
    """
    if seed is None:
        return None
    return (int(seed) * 0x9E3779B97F4A7C15 + salt) % (2**63 - 1)
