"""Shared utilities: RNG plumbing, validation helpers, log-combinatorics."""

from repro.utils.rng import as_rng, spawn_rngs
from repro.utils.logmath import log_binomial, log_n_choose_k
from repro.utils.validation import (
    check_fraction,
    check_nonnegative,
    check_positive,
    check_positive_int,
)

__all__ = [
    "as_rng",
    "spawn_rngs",
    "log_binomial",
    "log_n_choose_k",
    "check_fraction",
    "check_nonnegative",
    "check_positive",
    "check_positive_int",
]
