"""Log-domain combinatorics used by the sample-size (theta) bounds.

Theorem 1/2 and Lemmas 3/4 of the paper all contain a ``ln C(|V|, k)`` term.
For the graph sizes the paper targets (up to 40M vertices) the binomial
coefficient itself overflows anything, so we work with ``lgamma``.
"""

from __future__ import annotations

import math


def log_binomial(n: int, k: int) -> float:
    """Return ``ln C(n, k)`` computed stably in the log domain.

    ``C(n, k)`` is defined as 0 combinations when ``k > n`` which has no
    logarithm; following the convention used by sample-size bounds we raise
    instead of returning ``-inf`` so callers notice the misconfiguration.
    """
    if n < 0 or k < 0:
        raise ValueError(f"n and k must be non-negative, got n={n} k={k}")
    if k > n:
        raise ValueError(f"k must be <= n, got n={n} k={k}")
    if k in (0, n):
        return 0.0
    return (
        math.lgamma(n + 1) - math.lgamma(k + 1) - math.lgamma(n - k + 1)
    )


# Alias mirroring the paper's ``ln (|V| choose k)`` notation at call sites.
log_n_choose_k = log_binomial


def harmonic_bound(n: int) -> float:
    """Upper bound on the n-th harmonic number (used by workload Zipf law)."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    return math.log(n) + 1.0
