"""Segmented-array kernels shared by the flat-CSR fast paths.

The recurring primitive of the vectorised pipeline: given per-segment
``starts`` and ``lengths``, produce the concatenated index array
``[starts[0], .., starts[0]+lengths[0]-1, starts[1], ...]`` without a
Python loop.  Implemented as one ``arange`` over the total plus a
per-element repeated shift.
"""

from __future__ import annotations

import numpy as np

__all__ = ["segmented_arange"]


def segmented_arange(starts: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Concatenated ``arange(start, start+length)`` for every segment.

    ``lengths`` may contain zeros (those segments contribute nothing).
    Both inputs must be int64 arrays of equal length >= 1.
    """
    shift = np.empty(len(lengths), dtype=np.int64)
    shift[0] = 0
    np.cumsum(lengths[:-1], out=shift[1:])
    np.subtract(starts, shift, out=shift)
    index = np.arange(int(lengths.sum()), dtype=np.int64)
    index += shift.repeat(lengths)
    return index
