"""Exception hierarchy for the KB-TIM reproduction.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still distinguishing programming errors (``TypeError``/``ValueError`` raised
by argument validation) from domain failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library-specific errors."""


class GraphError(ReproError):
    """Raised for malformed graphs (bad vertex ids, inconsistent CSR, ...)."""


class ProfileError(ReproError):
    """Raised for malformed topic profiles or unknown topics."""


class QueryError(ReproError):
    """Raised for invalid KB-TIM queries (empty keyword set, bad k, ...)."""


class StorageError(ReproError):
    """Raised for on-disk format violations and I/O layer misuse."""


class CorruptIndexError(StorageError):
    """Raised when an index file fails checksum / magic / bounds validation."""


class IndexError_(ReproError):
    """Raised for logical index errors (keyword missing, not built, ...).

    Named with a trailing underscore to avoid shadowing the ``IndexError``
    builtin while keeping the obvious name.
    """


class EstimationError(ReproError):
    """Raised when OPT estimation cannot produce a usable lower bound."""


class ServerError(ReproError):
    """Raised when a serving worker fails out-of-band.

    Query-level failures (bad keyword, over-budget ``k``) keep their
    usual types even across a process boundary; :class:`ServerError`
    covers the transport instead — a worker process that died, a pipe
    that broke, or a request issued after the pool was closed — so
    callers can tell "your query was wrong" from "the serving tier is
    unhealthy" with one ``except`` clause.
    """


class DeadlineExceededError(ServerError):
    """Raised when a request exceeded its deadline before answering.

    The worker may still be computing (or may have died silently); the
    caller's pipe is no longer synchronized with it, so the owning
    handle is poisoned and — under supervision — the worker is
    restarted rather than trusted to frame the next reply.  The answer,
    if it ever arrives, is discarded, never delivered to a later
    request.
    """


class ShardUnavailableError(ServerError):
    """Raised fast for queries whose shard is down, draining or degraded.

    Carries ``shard`` (the worker index) and ``retry_after`` (seconds
    until the supervisor will next attempt a restart; ``None`` when the
    shard is out of restart budget or drained and needs operator
    action).  Other shards keep serving — this error scopes the outage
    to the keywords the dead shard owns.
    """

    def __init__(self, message: str, *, shard: int, retry_after: "float | None" = None):
        super().__init__(message)
        self.shard = shard
        self.retry_after = retry_after

    def __reduce__(self):
        """Pickle through the keyword-only constructor (pipe transport)."""
        return (_rebuild_shard_unavailable, (self.args[0], self.shard, self.retry_after))


def _rebuild_shard_unavailable(message, shard, retry_after):
    """Unpickle helper for :class:`ShardUnavailableError`."""
    return ShardUnavailableError(message, shard=shard, retry_after=retry_after)


class OverloadedError(ServerError):
    """Raised when admission control sheds a request (load shedding).

    The serving tier is saturated: its bounded in-flight budget is
    full, and queueing further work would only grow latency without
    bound.  ``retry_after`` is a hint in seconds (derived from recent
    service times) after which capacity is likely to be available —
    the library-level analogue of HTTP 429 + ``Retry-After``.
    """

    def __init__(self, message: str, *, retry_after: float = 0.0):
        super().__init__(message)
        self.retry_after = retry_after

    def __reduce__(self):
        """Pickle through the keyword-only constructor (pipe transport)."""
        return (_rebuild_overloaded, (self.args[0], self.retry_after))


def _rebuild_overloaded(message, retry_after):
    """Unpickle helper for :class:`OverloadedError`."""
    return OverloadedError(message, retry_after=retry_after)
