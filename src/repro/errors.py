"""Exception hierarchy for the KB-TIM reproduction.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still distinguishing programming errors (``TypeError``/``ValueError`` raised
by argument validation) from domain failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library-specific errors."""


class GraphError(ReproError):
    """Raised for malformed graphs (bad vertex ids, inconsistent CSR, ...)."""


class ProfileError(ReproError):
    """Raised for malformed topic profiles or unknown topics."""


class QueryError(ReproError):
    """Raised for invalid KB-TIM queries (empty keyword set, bad k, ...)."""


class StorageError(ReproError):
    """Raised for on-disk format violations and I/O layer misuse."""


class CorruptIndexError(StorageError):
    """Raised when an index file fails checksum / magic / bounds validation."""


class IndexError_(ReproError):
    """Raised for logical index errors (keyword missing, not built, ...).

    Named with a trailing underscore to avoid shadowing the ``IndexError``
    builtin while keeping the obvious name.
    """


class EstimationError(ReproError):
    """Raised when OPT estimation cannot produce a usable lower bound."""


class ServerError(ReproError):
    """Raised when a serving worker fails out-of-band.

    Query-level failures (bad keyword, over-budget ``k``) keep their
    usual types even across a process boundary; :class:`ServerError`
    covers the transport instead — a worker process that died, a pipe
    that broke, or a request issued after the pool was closed — so
    callers can tell "your query was wrong" from "the serving tier is
    unhealthy" with one ``except`` clause.
    """
