"""Command-line interface: ``python -m repro <command>``.

The paper's system has a natural operational split — generate/ingest data,
build indexes offline, serve queries online — and this CLI exposes each
stage so the library can be driven without writing Python:

``generate``
    Create a synthetic dataset (graph + profiles) on disk.
``build-index``
    Run Algorithm 1/3 over a stored dataset into an ``.rr``/``.irr`` file.
``query``
    Answer one KB-TIM query from a stored index (Algorithm 2/4).
``inspect``
    Print an index's catalog (keywords, θ_w, sizes).
``experiment``
    Regenerate one of the paper's tables/figures at a chosen scale.
``replay``
    Drive a serving pool (thread or process workers) over a synthetic
    query stream and report throughput/latency.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.core.irr_index import IRRIndex, IRRIndexBuilder
from repro.core.query import KBTIMQuery
from repro.core.rr_index import RRIndex, RRIndexBuilder
from repro.core.theta import ThetaPolicy
from repro.errors import CorruptIndexError, ReproError
from repro.graph.io import load_npz as load_graph_npz
from repro.graph.io import save_npz as save_graph_npz
from repro.profiles.io import load_profiles_npz, save_profiles_npz
from repro.propagation.ic import IndependentCascade
from repro.propagation.lt import LinearThreshold
from repro.storage.compression import Codec

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="KB-TIM: real-time targeted influence maximization (VLDB'15 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate a synthetic dataset")
    gen.add_argument("--family", choices=("news", "twitter"), required=True)
    gen.add_argument("--n", type=int, required=True, help="number of users")
    gen.add_argument("--topics", type=int, default=16, help="topic-space size")
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("--graph-out", required=True, help="output graph .npz")
    gen.add_argument("--profiles-out", required=True, help="output profiles .npz")

    build = sub.add_parser("build-index", help="build an RR or IRR index")
    build.add_argument("--graph", required=True, help="graph .npz")
    build.add_argument("--profiles", required=True, help="profiles .npz")
    build.add_argument("--out", required=True, help="output index file")
    build.add_argument("--kind", choices=("rr", "irr"), default="rr")
    build.add_argument("--model", choices=("ic", "lt"), default="ic")
    build.add_argument("--epsilon", type=float, default=0.5)
    build.add_argument("--k-max", type=int, default=100, help="system K")
    build.add_argument("--cap", type=int, default=None, help="per-keyword theta cap")
    build.add_argument("--delta", type=int, default=100, help="IRR partition size")
    build.add_argument(
        "--codec", choices=("raw", "varint", "pfor"), default="pfor"
    )
    build.add_argument(
        "--theta-hat",
        action="store_true",
        help="use the loose Lemma 3 bound instead of Lemma 4",
    )
    build.add_argument("--seed", type=int, default=0)
    build.add_argument(
        "--workers",
        type=int,
        default=1,
        help="parallel sampling processes (paper: 8 threads)",
    )

    query = sub.add_parser("query", help="answer a KB-TIM query from an index")
    query.add_argument("--index", required=True)
    query.add_argument(
        "--keywords", required=True, help="comma-separated topic names"
    )
    query.add_argument("--k", type=int, required=True, help="seed budget Q.k")
    query.add_argument("--json", action="store_true", help="machine-readable output")

    inspect = sub.add_parser("inspect", help="print an index catalog")
    inspect.add_argument("--index", required=True)

    verify = sub.add_parser("verify", help="integrity-check an index file")
    verify.add_argument("--index", required=True)
    verify.add_argument(
        "--shallow",
        action="store_true",
        help="skip the deep RR-set/inverted-list cross-check",
    )

    extract = sub.add_parser(
        "extract", help="carve a keyword subset into a new RR index"
    )
    extract.add_argument("--index", required=True, help="source RR index")
    extract.add_argument("--out", required=True, help="target index file")
    extract.add_argument(
        "--keywords", required=True, help="comma-separated topic names"
    )

    experiment = sub.add_parser(
        "experiment", help="regenerate one of the paper's tables/figures"
    )
    experiment.add_argument(
        "name",
        choices=(
            "table2",
            "table3",
            "table4",
            "table5",
            "table6",
            "table7",
            "table8",
            "figure4",
            "figure5",
            "figure6",
            "figure7",
        ),
    )
    experiment.add_argument("--scale", choices=("smoke", "default"), default="smoke")
    experiment.add_argument("--csv", help="also write the result table as CSV")

    rep = sub.add_parser(
        "replay", help="replay a query stream against a serving pool"
    )
    rep.add_argument("--index", required=True, help="RR index file to serve")
    rep.add_argument(
        "--profiles", required=True, help="profiles .npz (supplies the topic space)"
    )
    rep.add_argument(
        "--pool",
        choices=("thread", "process", "supervised"),
        default="thread",
        help=(
            "worker model: threads in this process, worker processes, or "
            "supervised worker processes (self-healing restarts, deadlines, "
            "admission control)"
        ),
    )
    rep.add_argument("--workers", type=int, default=4, help="pool shard count")
    rep.add_argument(
        "--dispatch",
        choices=("crc32", "rendezvous"),
        default="crc32",
        help=(
            "query-to-shard policy: the static crc32 keyword map, or "
            "load-aware weighted rendezvous hashing with hot-keyword "
            "replication (answers are identical either way)"
        ),
    )
    rep.add_argument(
        "--threads", type=int, default=4, help="closed-loop client concurrency"
    )
    rep.add_argument("--n-queries", type=int, default=48, help="stream length")
    rep.add_argument(
        "--lengths", default="1,2,3", help="comma-separated |Q.T| candidates"
    )
    rep.add_argument("--ks", default="5,10", help="comma-separated Q.k candidates")
    rep.add_argument(
        "--rate",
        type=float,
        help="open-loop Poisson arrival rate in q/s (omit for closed loop)",
    )
    rep.add_argument(
        "--warm",
        action="store_true",
        help="pre-load every keyword of the stream before measuring",
    )
    rep.add_argument("--seed", type=int, default=0)
    rep.add_argument(
        "--timeout",
        type=float,
        help=(
            "per-request deadline in seconds: enforced by process/supervised "
            "pools, and used as the goodput SLA threshold in the report"
        ),
    )
    rep.add_argument(
        "--chaos",
        metavar="PLAN.JSON",
        help=(
            "inject faults from a FaultPlan JSON file during the replay "
            "(kill/delay/drop/exhaust/corrupt); failures are recorded per "
            "query instead of aborting"
        ),
    )
    rep.add_argument(
        "--max-inflight",
        type=int,
        help=(
            "admission-control budget for --pool supervised: beyond this "
            "many in-flight requests the pool sheds load (Overloaded)"
        ),
    )
    rep.add_argument(
        "--shared-cache",
        action="store_true",
        help=(
            "share one decoded-block cache across process/supervised "
            "workers (each hot keyword is decoded once per machine; "
            "per-query I/O accounting reports zero reads on shared hits)"
        ),
    )
    rep.add_argument("--json", action="store_true", help="machine-readable output")
    return parser


def _policy_from_args(args: argparse.Namespace) -> ThetaPolicy:
    return ThetaPolicy(
        epsilon=args.epsilon,
        K=args.k_max,
        cap=args.cap,
    )


def _open_index(path: str):
    """Open an index file, sniffing RR vs IRR from the catalog."""
    try:
        return RRIndex(path)
    except CorruptIndexError:
        return IRRIndex(path)


def _cmd_generate(args: argparse.Namespace) -> int:
    from repro.datasets.synthetic import news_dataset, twitter_dataset

    builder = news_dataset if args.family == "news" else twitter_dataset
    dataset = builder(n=args.n, n_topics=args.topics, seed=args.seed)
    save_graph_npz(dataset.graph, args.graph_out)
    save_profiles_npz(dataset.profiles, args.profiles_out)
    print(
        f"generated {dataset.name}: {dataset.graph.n} users, "
        f"{dataset.graph.m} edges, {dataset.topics.size} topics"
    )
    print(f"  graph    -> {args.graph_out}")
    print(f"  profiles -> {args.profiles_out}")
    return 0


def _cmd_build_index(args: argparse.Namespace) -> int:
    graph = load_graph_npz(args.graph)
    profiles = load_profiles_npz(args.profiles)
    model = (
        IndependentCascade(graph)
        if args.model == "ic"
        else LinearThreshold(graph, weight_rng=args.seed)
    )
    codec = Codec[args.codec.upper()]
    policy = _policy_from_args(args)
    if args.kind == "rr":
        builder = RRIndexBuilder(
            model,
            profiles,
            policy=policy,
            codec=codec,
            use_theta_hat=args.theta_hat,
            workers=args.workers,
            rng=args.seed,
        )
    else:
        builder = IRRIndexBuilder(
            model,
            profiles,
            policy=policy,
            codec=codec,
            use_theta_hat=args.theta_hat,
            delta=args.delta,
            workers=args.workers,
            rng=args.seed,
        )
    report = builder.build(args.out)
    print(
        f"built {args.kind} index at {report.path}: "
        f"{len(report.keywords)} keywords, {report.theta_total:,} RR sets, "
        f"{report.file_bytes / 1024:.1f} KB in {report.seconds:.2f}s"
    )
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    keywords = tuple(kw.strip() for kw in args.keywords.split(",") if kw.strip())
    query = KBTIMQuery(keywords, args.k)
    with _open_index(args.index) as index:
        answer = index.query(query)
    if args.json:
        print(
            json.dumps(
                {
                    "seeds": list(answer.seeds),
                    "estimated_influence": answer.estimated_influence,
                    "theta": answer.theta,
                    "elapsed_seconds": answer.stats.elapsed_seconds,
                    "io_read_calls": answer.stats.io.read_calls,
                    "rr_sets_loaded": answer.stats.rr_sets_loaded,
                }
            )
        )
    else:
        print(f"seeds: {list(answer.seeds)}")
        print(f"estimated targeted influence: {answer.estimated_influence:.3f}")
        print(
            f"cost: {answer.stats.elapsed_seconds * 1e3:.1f} ms, "
            f"{answer.stats.io.read_calls} reads, "
            f"{answer.stats.rr_sets_loaded} RR sets loaded"
        )
    return 0


def _cmd_inspect(args: argparse.Namespace) -> int:
    with _open_index(args.index) as index:
        kind = "RR" if isinstance(index, RRIndex) else "IRR"
        print(
            f"{kind} index: |V|={index.n_vertices}, K={index.K}, "
            f"epsilon={index.epsilon}, codec={index.codec.name}"
        )
        print(f"{'keyword':16} {'theta_w':>9} {'phi_w':>10} {'idf':>7}")
        for name in index.keywords():
            meta = index.catalog[name]
            print(
                f"{name:16} {meta.theta:9,} {meta.phi_w:10.3f} {meta.idf:7.3f}"
            )
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.experiments import harness, figures, tables

    scale = (
        harness.ExperimentScale.smoke()
        if args.scale == "smoke"
        else harness.ExperimentScale.default()
    )
    runners = {
        "table2": tables.run_table2,
        "table3": tables.run_table3,
        "table4": tables.run_table4,
        "table5": tables.run_table5,
        "table6": tables.run_table6,
        "table7": tables.run_table7,
        "table8": tables.run_table8,
        "figure4": figures.run_figure4,
        "figure5": figures.run_figure5,
        "figure6": figures.run_figure6,
        "figure7": figures.run_figure7,
    }
    with harness.ExperimentContext(scale) as ctx:
        table = runners[args.name](ctx)
    print(table.render())
    if args.csv:
        table.to_csv(args.csv)
        print(f"\nwrote {args.csv}")
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    from repro.core.maintenance import verify_index

    report = verify_index(args.index, deep=not args.shallow)
    print(report)
    return 0


def _cmd_extract(args: argparse.Namespace) -> int:
    from repro.core.maintenance import extract_keywords

    keywords = [kw.strip() for kw in args.keywords.split(",") if kw.strip()]
    extracted = extract_keywords(args.index, args.out, keywords)
    print(f"extracted {len(extracted)} keywords into {args.out}: {extracted}")
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    import os

    from repro.core.chaos import ChaosController, FaultPlan, corrupt_index_copy
    from repro.core.process_pool import ProcessServerPool
    from repro.core.server import ServerPool
    from repro.core.supervision import SupervisedServerPool
    from repro.datasets.workload import (
        make_mixed_workload,
        poisson_arrivals,
        replay,
    )

    profiles = load_profiles_npz(args.profiles)
    lengths = tuple(int(v) for v in args.lengths.split(",") if v.strip())
    ks = tuple(int(v) for v in args.ks.split(",") if v.strip())
    queries = make_mixed_workload(
        profiles,
        n_queries=args.n_queries,
        lengths=lengths,
        ks=ks,
        rng=args.seed,
    )
    arrivals = (
        poisson_arrivals(len(queries), args.rate, rng=args.seed)
        if args.rate is not None
        else None
    )

    plan = FaultPlan.load(args.chaos) if args.chaos else None
    index_path = args.index
    corrupted_copy = None
    if plan is not None and plan.corrupt_events():
        # At-open fault: serve a deterministically corrupted *copy* so
        # the open fails with the typed CorruptIndexError (the original
        # file is never touched).
        corrupted_copy = args.index + ".chaos-corrupt"
        corrupt_index_copy(args.index, corrupted_copy, seed=args.seed)
        index_path = corrupted_copy

    def open_pool():
        if args.pool == "thread":
            return ServerPool(
                index_path, n_workers=args.workers, dispatch=args.dispatch
            )
        if args.pool == "process":
            return ProcessServerPool(
                index_path,
                n_workers=args.workers,
                dispatch=args.dispatch,
                request_timeout=args.timeout,
                shared_block_cache=args.shared_cache,
            )
        return SupervisedServerPool(
            index_path,
            n_workers=args.workers,
            dispatch=args.dispatch,
            request_timeout=args.timeout,
            max_inflight=args.max_inflight,
            shared_block_cache=args.shared_cache,
        )

    try:
        with open_pool() as pool:
            if args.warm:
                pool.warm(sorted({kw for q in queries for kw in q.keywords}))
            chaos = ChaosController(plan, pool) if plan is not None else None
            report = replay(
                pool,
                queries,
                threads=args.threads,
                arrivals=arrivals,
                deadline=args.timeout,
                chaos=chaos,
                tolerate_errors=(
                    True if (plan is not None or args.timeout) else None
                ),
            )
            try:
                hit_ratio = pool.stats.hit_ratio
            except ReproError:
                hit_ratio = None  # e.g. every shard of a bare pool died
            health = (
                pool.health().to_dict()
                if isinstance(pool, SupervisedServerPool)
                else None
            )
            if health is not None:
                rss_bytes = health["rss_bytes"]
                shm_bytes = health["shm_bytes"]
            elif isinstance(pool, ProcessServerPool):
                memory = pool.memory_info()
                rss_bytes = memory["total_rss_bytes"]
                shm_bytes = memory["shm_bytes"]
            else:  # thread pool: the workers live in this process
                from repro.core.server import process_rss_bytes

                rss_bytes = process_rss_bytes()
                shm_bytes = 0
    finally:
        if corrupted_copy is not None and os.path.exists(corrupted_copy):
            os.unlink(corrupted_copy)

    payload = {
        "pool": args.pool,
        "workers": args.workers,
        "dispatch": args.dispatch,
        "threads": args.threads,
        "mode": "open" if args.rate is not None else "closed",
        "queries": report.n_queries,
        "qps": report.qps,
        "p50_ms": report.percentile_latency(50) * 1e3,
        "p95_ms": report.percentile_latency(95) * 1e3,
        "p99_ms": report.percentile_latency(99) * 1e3,
        "p99_admitted_ms": report.percentile_latency(99, admitted_only=True)
        * 1e3,
        "mean_ms": report.mean_latency * 1e3,
        "hit_ratio": hit_ratio,
        "deadline_s": args.timeout,
        "goodput": report.goodput,
        "goodput_qps": report.goodput_qps,
        "failed": report.n_failed,
        "restarts": report.restarts,
        "retries": report.retries,
        "sheds": report.sheds,
        "rss_bytes": rss_bytes,
        "shm_bytes": shm_bytes,
        "fault_events": list(report.fault_events),
    }
    if health is not None:
        payload["health"] = health
    if args.json:
        print(json.dumps(payload))
    else:
        print(
            f"{payload['mode']}-loop replay: {payload['queries']} queries on "
            f"{args.workers} {args.pool} workers "
            f"({args.dispatch} dispatch), {args.threads} client threads"
        )
        print(
            f"  {payload['qps']:.1f} q/s; p50 {payload['p50_ms']:.2f} ms, "
            f"p95 {payload['p95_ms']:.2f} ms, p99 {payload['p99_ms']:.2f} ms"
        )
        if hit_ratio is not None:
            print(f"  keyword-cache hit ratio: {hit_ratio:.2f}")
        print(
            f"  memory: {payload['rss_bytes'] / 1e6:.1f} MB worker RSS"
            + (
                f", {payload['shm_bytes'] / 1e6:.1f} MB shared segments"
                if payload["shm_bytes"]
                else ""
            )
        )
        if plan is not None or args.timeout:
            print(
                f"  goodput {payload['goodput']}/{payload['queries']} "
                f"({payload['goodput_qps']:.1f} q/s); "
                f"{payload['failed']} failed, {payload['sheds']} shed, "
                f"{payload['restarts']} restarts, {payload['retries']} retries"
            )
        for event in report.fault_events:
            print(
                f"  fault @query {event['query']}: {event['kind']}"
                + (
                    f" shard {event['shard']}"
                    if event.get("shard") is not None
                    else ""
                )
                + f" -> {event['effect']}"
            )
    return 0


_COMMANDS = {
    "generate": _cmd_generate,
    "build-index": _cmd_build_index,
    "query": _cmd_query,
    "inspect": _cmd_inspect,
    "verify": _cmd_verify,
    "extract": _cmd_extract,
    "experiment": _cmd_experiment,
    "replay": _cmd_replay,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except (ValueError, TypeError) as exc:
        # Argument-validation failures from the library layer (e.g.
        # `--workers 0` hitting check_positive_int) follow the same
        # clean one-line error contract as domain failures.
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
