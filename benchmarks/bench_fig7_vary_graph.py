"""Figure 7: execution time and RR sets loaded while varying |V|.

Paper shape: RR and IRR outperform WRIS by large margins at every graph
size; on the twitter-like family IRR's advantage over RR grows with the
graph (hub structure concentrates coverage in early partitions), while on
the news-like family IRR converges towards RR.
"""

import numpy as np

from repro.experiments.figures import run_figure7

from conftest import emit


def test_figure7_vary_graph(ctx, benchmark, results_dir):
    table = benchmark.pedantic(lambda: run_figure7(ctx), rounds=1, iterations=1)
    emit(table, results_dir, "figure7")

    wris = np.array(table.column("WRIS time (s)"))
    rr = np.array(table.column("RR time (s)"))
    irr = np.array(table.column("IRR time (s)"))
    assert rr.mean() < wris.mean()
    assert irr.mean() < wris.mean()

    # IRR never loads more active sets than RR's θ^Q prefix; at the
    # default Q.k it converges towards RR (the paper's "degrades to RR"
    # regime — the dramatic twitter-scale gap needs billion-edge graphs,
    # see EXPERIMENTS.md).
    for row in table.rows:
        assert row[6] <= row[5] + 1
