"""Ablation: buffer-pool capacity vs physical I/O on repeated queries.

The disk indexes are read through an LRU buffer pool
(:mod:`repro.storage.pager`).  A production serving tier answers many
queries against the same index, so pool capacity directly trades memory
for physical page reads.  This ablation replays a query workload against
the IRR index at several pool capacities and records the hit ratio — the
knob a deployment would actually tune.
"""


from repro.core.irr_index import IRRIndex
from repro.datasets.workload import make_workload
from repro.experiments.reporting import Table
from repro.storage.iostats import IOStats
from repro.storage.pager import BufferPool

from conftest import emit

CAPACITIES = (8, 64, 512, 4096)


def test_ablation_buffer_pool(ctx, benchmark, results_dir):
    ds = ctx.default_dataset("twitter")
    ctx.build_index(ds, kind="irr")
    path = ctx.index_path(ds, kind="irr")
    queries = list(
        make_workload(ds.profiles, length=3, k=20, n_queries=6, rng=99)
    )

    def sweep():
        table = Table(
            "Ablation: buffer-pool capacity (IRR, repeated queries)",
            ("capacity (pages)", "physical pages", "cached pages", "hit ratio"),
        )
        for capacity in CAPACITIES:
            stats = IOStats()
            pool = BufferPool(capacity)
            with IRRIndex(path, stats=stats, pool=pool) as index:
                for query in queries:
                    index.query(query)
            table.add_row(
                capacity,
                stats.pages_read,
                stats.pages_hit,
                stats.hit_ratio,
            )
        table.add_note("same 6-query workload replayed at each capacity")
        return table

    table = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(table, results_dir, "ablation_bufferpool")

    ratios = table.column("hit ratio")
    # More cache can only help, and a big pool must serve mostly from RAM.
    assert ratios[-1] >= ratios[0]
    assert ratios[-1] > 0.5
