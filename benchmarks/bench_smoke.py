"""One-tiny-iteration smoke run of every benchmark entry point.

The benchmark suite regenerates the paper's evaluation and is normally
run by hand; nothing in tier-1 would notice if an API change broke a
bench file.  This module closes that gap: it is collected by the plain
``pytest`` run (see ``pytest.ini``) and replays the *whole* ``benchmarks/``
directory in a subprocess at the ``smoke`` campaign scale with
``--benchmark-disable`` (each measured callable runs exactly once).  Any
import error, API drift, or broken shape assertion in a bench file fails
tier-1 here instead of rotting silently.

Deselect with ``-m "not bench_smoke"`` when iterating on unit tests.
"""

import os
import subprocess
import sys

import pytest

BENCH_DIR = os.path.dirname(os.path.abspath(__file__))
REPO_ROOT = os.path.dirname(BENCH_DIR)
SRC_DIR = os.path.join(REPO_ROOT, "src")


@pytest.mark.bench_smoke
def test_benchmark_suite_smoke(tmp_path, request):
    if os.environ.get("KBTIM_BENCH_SCALE"):
        pytest.skip("explicit KBTIM_BENCH_SCALE campaign run; smoke replay redundant")
    for arg in request.config.invocation_params.args:
        path = os.path.abspath(str(arg).split("::")[0])
        if path.startswith(BENCH_DIR) and os.path.basename(path) != "bench_smoke.py":
            # `pytest benchmarks` / `pytest benchmarks/bench_x.py` is a
            # deliberate campaign-scale run — don't nest a smoke replay.
            pytest.skip("explicit benchmarks invocation; smoke replay redundant")
    env = dict(os.environ)
    env["KBTIM_BENCH_SCALE"] = "smoke"
    env["KBTIM_BENCH_RESULTS"] = str(tmp_path / "results")
    env["PYTHONPATH"] = SRC_DIR + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    result = subprocess.run(
        [
            sys.executable,
            "-m",
            "pytest",
            BENCH_DIR,
            "-q",
            "--benchmark-disable",
            "-p",
            "no:cacheprovider",
            f"--ignore={os.path.abspath(__file__)}",
        ],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=540,
    )
    if result.returncode != 0:
        pytest.fail(
            "benchmark smoke run failed:\n"
            + result.stdout[-8000:]
            + "\n"
            + result.stderr[-4000:]
        )
