"""Table 6: number of I/Os issued by the IRR index as Q.k grows.

Paper shape: the I/O count grows with the seed budget (6 -> 170 on news,
8 -> 81 on Twitter as Q.k goes 10 -> 50), because confirming more seeds
forces more partitions to be loaded before the NRA bound closes.
"""

from repro.experiments.tables import run_table6

from conftest import emit


def test_table6_irr_io(ctx, benchmark, results_dir):
    table = benchmark.pedantic(lambda: run_table6(ctx), rounds=1, iterations=1)
    emit(table, results_dir, "table6")

    for row in table.rows:
        ios = list(row[1:])
        assert ios[-1] > ios[0], f"{row[0]}: I/O must grow with Q.k"
        assert all(v > 0 for v in ios)
