"""Shared benchmark fixtures.

The benchmark suite regenerates every table and figure of the paper's
evaluation (Section 6).  A session-scoped :class:`ExperimentContext` at
``default`` scale is shared across files so datasets and index builds are
paid once, like the paper's offline phase.  Each bench

1. runs the experiment under ``benchmark.pedantic`` (1 round — these are
   experiment regenerators, not micro-benchmarks; see
   ``bench_micro_ops.py`` for tight-loop measurements),
2. prints the paper-shaped table,
3. persists it as CSV under ``benchmarks/results/``,
4. asserts the qualitative *shape* recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.harness import ExperimentContext, ExperimentScale

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture(scope="session")
def ctx():
    """Default-scale experiment context shared by the whole session."""
    with ExperimentContext(ExperimentScale.default()) as context:
        yield context


@pytest.fixture(scope="session")
def results_dir() -> str:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return RESULTS_DIR


def emit(table, results_dir: str, name: str) -> None:
    """Print a result table and persist it as CSV."""
    print()
    print(table.render())
    table.to_csv(os.path.join(results_dir, f"{name}.csv"))
