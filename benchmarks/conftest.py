"""Shared benchmark fixtures.

The benchmark suite regenerates every table and figure of the paper's
evaluation (Section 6).  A session-scoped :class:`ExperimentContext` at
``default`` scale is shared across files so datasets and index builds are
paid once, like the paper's offline phase.  Each bench

1. runs the experiment under ``benchmark.pedantic`` (1 round — these are
   experiment regenerators, not micro-benchmarks; see
   ``bench_micro_ops.py`` for tight-loop measurements),
2. prints the paper-shaped table,
3. persists it as CSV under ``benchmarks/results/``,
4. asserts the qualitative *shape* recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import os
from dataclasses import replace

import pytest

from repro.experiments.harness import ExperimentContext, ExperimentScale

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def bench_scale() -> ExperimentScale:
    """The campaign scale, selectable via ``KBTIM_BENCH_SCALE``.

    ``default`` (unset) is the paper-shaped suite; ``smoke`` is the
    one-tiny-iteration profile that ``bench_smoke.py`` wires into the
    tier-1 test run so benchmark code cannot silently rot.  The smoke
    profile keeps two sizes per family so the sweep-shaped assertions
    (Figures 5-7, Table 5) still exercise a trend.
    """
    name = os.environ.get("KBTIM_BENCH_SCALE", "default")
    if name == "default":
        return ExperimentScale.default()
    if name == "smoke":
        # Like ExperimentScale.smoke(), but with two sizes per family so
        # sweep-shape assertions see a trend, and with the default-scale
        # θ exponents: the Figures 5-7 shape (indexes beat online WRIS)
        # only exists when WRIS pays its Theorem-2-sized sampling bill,
        # while the offline cap keeps index builds smoke-sized.
        smoke = ExperimentScale.smoke()
        return replace(
            smoke,
            name="bench-smoke",
            news_sizes=(0, 1),
            twitter_sizes=(0, 1),
            queries_per_point=1,
            policy=replace(smoke.policy, epsilon=0.5, online_cap=40_000),
        )
    raise ValueError(f"unknown KBTIM_BENCH_SCALE {name!r}")


@pytest.fixture(scope="session")
def ctx():
    """Experiment context at the campaign scale, shared by the session."""
    with ExperimentContext(bench_scale()) as context:
        yield context


@pytest.fixture(scope="session")
def results_dir() -> str:
    path = os.environ.get("KBTIM_BENCH_RESULTS", RESULTS_DIR)
    os.makedirs(path, exist_ok=True)
    return path


def emit(table, results_dir: str, name: str) -> None:
    """Print a result table and persist it as CSV."""
    print()
    print(table.render())
    table.to_csv(os.path.join(results_dir, f"{name}.csv"))
