"""Serving-tier throughput: caches, batching, and concurrent serving.

Beyond the paper: the deployment the paper motivates (an ad platform
answering a query *stream*) amortises keyword decode work across queries
and across *concurrent* clients.  This bench measures

* the steady-state speedup of the :class:`~repro.core.server.KBTIMServer`
  keyword cache over re-reading the index per query (PR 1/3 tiers),
* batched execution (``query_batch``) vs the same queries issued
  sequentially, on a Zipf-skewed mixed-length workload (PR 4),
* a closed-loop worker sweep, thread pool vs process pool at 1/2/4/8
  workers: p50/p95/p99 latency and QPS (PR 4/5).  The thread pool's
  warm QPS is GIL-bound (BENCH_pr4.json); the
  :class:`~repro.core.process_pool.ProcessServerPool` runs the same
  sharded dispatch on worker processes, so this sweep measures the GIL
  ceiling away,
* the dispatch matrix (PR 9): static crc32 vs load-aware weighted
  rendezvous, Zipf-mixed vs balanced streams, reporting QPS and the
  per-shard query-count spread (max/mean).  The guard fails the job if
  rendezvous lets the Zipf stream spread past 2.0x even.
"""

import time

import numpy as np
import pytest

from repro.core.chaos import ChaosController, FaultEvent, FaultPlan
from repro.core.rr_index import RRIndex
from repro.core.server import KBTIMServer, process_rss_bytes
from repro.datasets.workload import (
    make_mixed_workload,
    make_workload,
    poisson_arrivals,
    replay,
)

from conftest import emit
from repro.experiments.reporting import Table


@pytest.fixture(scope="module")
def serving_setup(ctx):
    ds = ctx.default_dataset("twitter")
    ctx.build_index(ds, kind="rr")
    path = ctx.index_path(ds, kind="rr")
    queries = list(
        make_workload(ds.profiles, length=3, k=20, n_queries=12, rng=55)
    )
    return path, queries


@pytest.fixture(scope="module")
def mixed_setup(ctx):
    """The PR 4 serving regime: Zipf keyword skew, mixed lengths and k."""
    ds = ctx.default_dataset("twitter")
    ctx.build_index(ds, kind="rr")
    path = ctx.index_path(ds, kind="rr")
    n_queries = 24 * ctx.scale.queries_per_point
    ks = tuple(k for k in (10, 25) if k <= ctx.scale.policy.K) or (
        ctx.scale.policy.K,
    )
    queries = list(
        make_mixed_workload(
            ds.profiles,
            n_queries=n_queries,
            lengths=ctx.scale.keyword_lengths,
            ks=ks,
            rng=56,
        )
    )
    return ds, path, queries


def test_cold_index_queries(serving_setup, benchmark):
    """Per-query cold cost: every query re-reads and re-decodes.

    The decoded-prefix cache is disabled so this stays the cold baseline
    the warm-server comparison is measured against.
    """
    path, queries = serving_setup

    def run_cold():
        with RRIndex(path, prefix_cache_keywords=0) as index:
            for query in queries:
                index.query(query)

    benchmark.pedantic(run_cold, rounds=3, iterations=1)


def test_warm_server_queries(serving_setup, benchmark, results_dir):
    path, queries = serving_setup
    server = KBTIMServer(RRIndex(path), cache_keywords=32)
    for query in queries:  # warm-up pass
        server.query(query)

    def run_warm():
        for query in queries:
            server.query(query)

    benchmark.pedantic(run_warm, rounds=3, iterations=1)

    table = Table(
        "Serving tier: keyword-block cache statistics",
        ("queries", "keyword hits", "keyword misses", "hit ratio", "p95 (ms)"),
    )
    table.add_row(
        server.stats.queries,
        server.stats.keyword_hits,
        server.stats.keyword_misses,
        server.stats.hit_ratio,
        server.stats.percentile_latency(95) * 1e3,
    )
    emit(table, results_dir, "server_throughput")
    assert server.stats.hit_ratio > 0.5
    server.index.close()


def test_batched_vs_sequential(mixed_setup, benchmark, results_dir):
    """query_batch loads each keyword once at the max requested prefix;
    sequential serving reloads on every cache miss.  The block cache is
    deliberately smaller than the keyword universe (the deployed regime:
    millions of keywords, bounded memory), so sequential execution
    thrashes where one shared-scan batch pays each keyword once.  Same
    bit-identical answers, fewer reads, higher throughput."""
    _ds, path, queries = mixed_setup
    cache_keywords = 4  # < distinct keywords in the stream, by design

    def run_sequential():
        with KBTIMServer(
            RRIndex(path, prefix_cache_keywords=0),
            cache_keywords=cache_keywords,
        ) as server:
            return [server.query(q) for q in queries], server

    def run_batched():
        with KBTIMServer(
            RRIndex(path, prefix_cache_keywords=0),
            cache_keywords=cache_keywords,
        ) as server:
            return server.query_batch(queries), server

    # Interleave untimed A/B rounds for the table; benchmark the batch.
    rounds = 3
    seq_seconds, batch_seconds = [], []
    seq_reads = batch_reads = None
    sequential_answers = batched_answers = None
    for _ in range(rounds):
        started = time.perf_counter()
        sequential_answers, seq_server = run_sequential()
        seq_seconds.append(time.perf_counter() - started)
        seq_reads = seq_server.index.stats.read_calls
        started = time.perf_counter()
        batched_answers, batch_server = run_batched()
        batch_seconds.append(time.perf_counter() - started)
        batch_reads = batch_server.index.stats.read_calls

    benchmark.pedantic(run_batched, rounds=1, iterations=1)

    for a, b in zip(sequential_answers, batched_answers):
        assert a.seeds == b.seeds  # batching must never change answers
    seq_med = float(np.median(seq_seconds))
    batch_med = float(np.median(batch_seconds))
    table = Table(
        "Serving tier: batched vs sequential (cold, mixed Zipf workload)",
        ("mode", "queries", "read calls", "median s", "q/s"),
    )
    table.add_row("sequential", len(queries), seq_reads, seq_med, len(queries) / seq_med)
    table.add_row("batched", len(queries), batch_reads, batch_med, len(queries) / batch_med)
    emit(table, results_dir, "server_batch_vs_sequential")
    assert batch_reads < seq_reads
    assert batch_med < seq_med  # the acceptance headline: batched > sequential QPS


@pytest.fixture(scope="module")
def balanced_setup(ctx):
    """A dispatch-balanced warm stream: single-keyword queries cycling
    over every indexed keyword.

    The mixed Zipf stream's *primary-keyword* dispatch is heavily skewed
    (the lexicographically smallest keyword of a multi-keyword query
    concentrates on few names), so a worker sweep over it measures shard
    imbalance, not the worker model.  This stream spreads primaries over
    the whole catalog, which is the regime where worker parallelism can
    actually show up.
    """
    ds = ctx.default_dataset("twitter")
    ctx.build_index(ds, kind="rr")
    path = ctx.index_path(ds, kind="rr")
    with RRIndex(path) as index:
        names = index.keywords()
    k = min(25, ctx.scale.policy.K)
    from repro.core.query import KBTIMQuery

    queries = [
        KBTIMQuery((names[i % len(names)],), k)
        for i in range(24 * ctx.scale.queries_per_point * 2)
    ]
    return ds, queries


def _transport_overhead_ns(pool, queries) -> float:
    """Mean per-query overhead *outside* the worker, in nanoseconds.

    Each answer carries the worker-measured compute time
    (``stats.elapsed_seconds``); the caller-observed wall time minus
    that is dispatch + transport — pipe framing, response encode/decode,
    and (for process pools) the shared-memory flat-frame round trip.
    """
    probes = queries[: min(16, len(queries))]
    wall = 0.0
    inside = 0.0
    for query in probes:
        started = time.perf_counter()
        selection = pool.query(query)
        wall += time.perf_counter() - started
        inside += selection.stats.elapsed_seconds
    return max(0.0, (wall - inside) / len(probes)) * 1e9


def _rss_per_worker(pool, workers: int) -> float:
    """Mean per-worker resident bytes (whole process for thread pools)."""
    memory_info = getattr(pool, "memory_info", None)
    if memory_info is not None:
        return memory_info()["total_rss_bytes"] / workers
    return process_rss_bytes() / workers


def test_pool_worker_sweep(ctx, mixed_setup, balanced_setup, benchmark, results_dir):
    """Closed-loop replay, thread pool vs process pool at 1/2/4/8 workers.

    Both pools run the identical crc32 primary-keyword shard dispatch;
    the variables are the worker model and the traffic shape.  Two
    regimes per pool kind:

    * ``zipf-mixed`` — the PR 4 serving stream.  Primary-keyword skew
      concentrates most queries on one shard, so neither pool can scale
      (the sweep pins the dispatch-skew ceiling and queueing percentiles
      under concurrent load).
    * ``balanced`` — single-keyword queries cycling the whole catalog.
      Here shards are populated evenly; the thread pool's warm path is
      still GIL-serialized numpy + greedy (PR 4 measured QPS decreasing
      with threads), while process workers execute on as many *cores* as
      the machine provides.  On a single-core host the process pool
      tracks the thread pool minus pipe overhead; the per-PR CI artifact
      re-measures this table on multi-core runners.

    Client concurrency equals the worker count, so each point measures
    what N shards actually execute.
    """
    ds, _path, zipf_queries = mixed_setup
    _ds, balanced_queries = balanced_setup
    regimes = [("zipf-mixed", zipf_queries), ("balanced", balanced_queries)]
    sweep = []

    # Both pools run the default static crc32 dispatch here; the
    # dispatch policies themselves are compared in test_dispatch_spread.

    def run_sweep():
        sweep.clear()
        for regime, queries in regimes:
            for kind in ("thread", "process"):
                for workers in (1, 2, 4, 8):
                    with ctx.open_server_pool(
                        ds, n_workers=workers, kind=kind
                    ) as pool:
                        pool.query_batch(queries)  # warm the shard caches
                        report = replay(pool, queries, threads=workers)
                        sweep.append(
                            (
                                regime,
                                kind,
                                workers,
                                report,
                                pool.stats.hit_ratio,
                                _transport_overhead_ns(pool, queries),
                                _rss_per_worker(pool, workers),
                            )
                        )

    benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    table = Table(
        "Server pool: closed-loop worker sweep (warm)",
        (
            "regime",
            "pool",
            "workers",
            "q/s",
            "p50 (ms)",
            "p95 (ms)",
            "p99 (ms)",
            "hit ratio",
            "transport (ns/q)",
            "rss/worker (MB)",
        ),
    )
    for regime, kind, workers, report, hit_ratio, transport_ns, rss in sweep:
        table.add_row(
            regime,
            kind,
            workers,
            report.qps,
            report.percentile_latency(50) * 1e3,
            report.percentile_latency(95) * 1e3,
            report.percentile_latency(99) * 1e3,
            hit_ratio,
            transport_ns,
            rss / 1e6,
        )
    emit(table, results_dir, "server_pool_worker_sweep")
    for regime, queries in regimes:
        expected = len(queries)
        points = [entry for entry in sweep if entry[0] == regime]
        assert all(
            report.n_queries == expected for _r, _k, _w, report, *_ in points
        )
        assert all(report.qps > 0 for _r, _k, _w, report, *_ in points)
    # Memory guard: the process pool's *per-worker* RSS must stay flat
    # as workers grow — the index pages are mmap-shared and answers ride
    # shared-memory frames, so total RSS should scale ~linearly (each
    # worker pays its own caches), never superlinearly.  Allow generous
    # noise: interpreter overhead dominates at this scale.
    for regime, _queries in regimes:
        by_workers = {
            w: rss
            for r, kind, w, _rep, _h, _t, rss in sweep
            if r == regime and kind == "process"
        }
        lo, hi = by_workers[min(by_workers)], by_workers[max(by_workers)]
        assert hi <= 1.5 * lo + 32e6, (
            f"{regime}: per-worker RSS grew from {lo / 1e6:.1f} MB at "
            f"{min(by_workers)} workers to {hi / 1e6:.1f} MB at "
            f"{max(by_workers)} — superlinear total growth"
        )
    # The perf narrative lives in BENCH_pr5.json; bit-identical answers
    # across pool kinds are regression-tested in tests/test_process_pool.py.


def test_dispatch_spread(
    ctx, mixed_setup, balanced_setup, benchmark, results_dir
):
    """Dispatch matrix: crc32 vs rendezvous, per-shard spread and QPS.

    The PR 4/5 sweeps showed the static crc32 primary-keyword map
    concentrating a Zipf-mixed stream on one shard.  This table pins the
    fix: the same two streams replayed through both dispatch policies on
    a 4-worker thread pool, reporting QPS plus ``dispatch_spread`` — the
    max/mean per-shard query count (1.0 is perfectly even; 4.0 is one
    shard taking everything).

    Guard: weighted rendezvous must hold the Zipf stream within 2.0x of
    even (the PR acceptance bound).  No relative crc32-vs-rendezvous
    assertion here: at smoke scale the stream's primary skew is mild and
    load-aware routing is timing-dependent, so the two policies are
    statistically tied — the deterministic skew case (crc32 piling 39 of
    48 queries on one shard, rendezvous holding 1.5x even) is pinned in
    tests/test_dispatch.py.  Answers are dispatch-independent by
    construction (every worker serves the same immutable index); that
    bit-identical guarantee is regression-tested there too, so this
    bench only measures balance.
    """
    ds, _path, zipf_queries = mixed_setup
    _ds, balanced_queries = balanced_setup
    regimes = [("zipf-mixed", zipf_queries), ("balanced", balanced_queries)]
    rows = []

    def run_matrix():
        rows.clear()
        for dispatch in ("crc32", "rendezvous"):
            for regime, queries in regimes:
                with ctx.open_server_pool(
                    ds, n_workers=4, kind="thread", dispatch=dispatch
                ) as pool:
                    pool.query_batch(queries)  # warm the shard caches
                    base = [w.stats.queries for w in pool.workers]
                    report = replay(pool, queries, threads=4)
                    counts = [
                        w.stats.queries - b
                        for w, b in zip(pool.workers, base)
                    ]
                    rows.append((dispatch, regime, report, counts))

    benchmark.pedantic(run_matrix, rounds=1, iterations=1)

    table = Table(
        "Server pool: dispatch spread, crc32 vs rendezvous (4 workers, warm)",
        (
            "dispatch",
            "regime",
            "q/s",
            "per-shard max",
            "per-shard mean",
            "dispatch_spread",
        ),
    )
    spreads = {}
    for dispatch, regime, report, counts in rows:
        mean = sum(counts) / len(counts)
        spreads[(dispatch, regime)] = max(counts) / mean
        table.add_row(
            dispatch,
            regime,
            report.qps,
            max(counts),
            mean,
            max(counts) / mean,
        )
    emit(table, results_dir, "server_dispatch_spread")
    # Every query is served exactly once whichever policy routes it.
    for _dispatch, regime, _report, counts in rows:
        expected = dict(regimes)[regime]
        assert sum(counts) == len(expected)
    assert spreads[("rendezvous", "zipf-mixed")] <= 2.0, (
        "rendezvous dispatch let the Zipf stream spread to "
        f"{spreads[('rendezvous', 'zipf-mixed')]:.2f}x even (bound: 2.0x)"
    )


def test_supervised_resilience(ctx, mixed_setup, benchmark, results_dir):
    """Supervised pool under deterministic faults: restart/shed counters.

    Two scenarios, one table row each, so the per-PR bench-smoke artifact
    carries the robustness counters alongside the throughput numbers:

    * ``kill-midstream`` — a :class:`FaultPlan` kills one worker halfway
      through a closed-loop replay.  The supervisor must heal it on the
      next request to that shard (``restarts >= 1``) with zero failed
      queries, and the healing cost shows up in the latency columns.
    * ``saturation-shed`` — open-loop Poisson arrivals far past capacity
      against a tiny admission budget (``max_inflight=2``).  Excess load
      is shed with typed errors instead of queueing, so the *admitted*
      p99 stays bounded while ``sheds`` counts what was turned away.
    """
    ds, _path, base_queries = mixed_setup
    rows = []

    def run_scenarios():
        rows.clear()
        # --- kill-midstream: closed loop, one worker killed halfway ---
        queries = base_queries
        kill_at = len(queries) // 2
        with ctx.open_server_pool(ds, n_workers=2, kind="supervised") as pool:
            victim = pool.shard_of(queries[kill_at])
            plan = FaultPlan(
                events=[FaultEvent(kind="kill", after_query=kill_at, shard=victim)]
            )
            report = replay(
                pool, queries, threads=2, chaos=ChaosController(plan, pool)
            )
            rows.append(("kill-midstream", report))
        # --- saturation-shed: open loop far past capacity, tiny budget ---
        saturated = base_queries * 5
        arrivals = poisson_arrivals(len(saturated), 5000.0, rng=57)
        with ctx.open_server_pool(
            ds, n_workers=2, kind="supervised", max_inflight=2
        ) as pool:
            report = replay(
                pool,
                saturated,
                threads=8,
                arrivals=arrivals,
                deadline=30.0,
                tolerate_errors=True,
            )
            rows.append(("saturation-shed", report))

    benchmark.pedantic(run_scenarios, rounds=1, iterations=1)

    table = Table(
        "Supervised pool: fault-injection counters (chaos replay)",
        (
            "scenario",
            "queries",
            "ok",
            "failed",
            "restarts",
            "retries",
            "sheds",
            "goodput q/s",
            "p99 admitted (ms)",
        ),
    )
    for scenario, report in rows:
        table.add_row(
            scenario,
            report.n_queries,
            report.n_ok,
            report.n_failed,
            report.restarts,
            report.retries,
            report.sheds,
            report.goodput_qps,
            report.percentile_latency(99, admitted_only=True) * 1e3,
        )
    emit(table, results_dir, "server_supervised_resilience")
    killed, shed = rows[0][1], rows[1][1]
    assert killed.n_failed == 0 and killed.restarts >= 1  # healed, no losses
    assert shed.sheds > 0 and shed.sheds == shed.n_failed  # shed, not queued
    assert shed.percentile_latency(99, admitted_only=True) < 30.0
