"""Serving-tier throughput: cold index queries vs warm keyword-block cache.

Beyond the paper: the deployment the paper motivates (an ad platform
answering a query *stream*) amortises keyword decode work across queries.
This bench measures the steady-state speedup of the
:class:`~repro.core.server.KBTIMServer` keyword cache over re-reading the
index per query, on a popularity-skewed workload.
"""

import numpy as np
import pytest

from repro.core.rr_index import RRIndex
from repro.core.server import KBTIMServer
from repro.datasets.workload import make_workload

from conftest import emit
from repro.experiments.reporting import Table


@pytest.fixture(scope="module")
def serving_setup(ctx):
    ds = ctx.default_dataset("twitter")
    ctx.build_index(ds, kind="rr")
    path = ctx.index_path(ds, kind="rr")
    queries = list(
        make_workload(ds.profiles, length=3, k=20, n_queries=12, rng=55)
    )
    return path, queries


def test_cold_index_queries(serving_setup, benchmark):
    """Per-query cold cost: every query re-reads and re-decodes.

    The decoded-prefix cache is disabled so this stays the cold baseline
    the warm-server comparison is measured against.
    """
    path, queries = serving_setup

    def run_cold():
        with RRIndex(path, prefix_cache_keywords=0) as index:
            for query in queries:
                index.query(query)

    benchmark.pedantic(run_cold, rounds=3, iterations=1)


def test_warm_server_queries(serving_setup, benchmark, results_dir):
    path, queries = serving_setup
    server = KBTIMServer(RRIndex(path), cache_keywords=32)
    for query in queries:  # warm-up pass
        server.query(query)

    def run_warm():
        for query in queries:
            server.query(query)

    benchmark.pedantic(run_warm, rounds=3, iterations=1)

    table = Table(
        "Serving tier: keyword-block cache statistics",
        ("queries", "keyword hits", "keyword misses", "hit ratio", "p95 (ms)"),
    )
    table.add_row(
        server.stats.queries,
        server.stats.keyword_hits,
        server.stats.keyword_misses,
        server.stats.hit_ratio,
        server.stats.percentile_latency(95) * 1e3,
    )
    emit(table, results_dir, "server_throughput")
    assert server.stats.hit_ratio > 0.5
    server.index.close()
