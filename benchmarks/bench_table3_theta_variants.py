"""Table 3: index disk space and build time — θ̂_w (Lemma 3) vs θ_w (Lemma 4).

Paper shape: the θ̂_w variant is ~9-10x larger and proportionally slower
to build on every news size; the improved Lemma 4 bound is what makes the
index practical.

This bench uses its own *uncapped* θ policy (a cap would clamp both
variants to the same sample count and erase the contrast); ε is coarser
than the paper's 0.1 so the absolute sample counts stay pure-Python-sized.
"""

from dataclasses import replace

import pytest

from repro.core.theta import ThetaPolicy
from repro.experiments.harness import ExperimentContext
from repro.experiments.tables import run_table3

from conftest import bench_scale, emit


@pytest.fixture(scope="module")
def table3_ctx():
    scale = replace(
        bench_scale(),
        news_sizes=bench_scale().news_sizes[:2],
        n_topics=8,
        policy=ThetaPolicy(epsilon=2.0, K=20, cap=None),
    )
    with ExperimentContext(scale) as context:
        yield context


def test_table3_theta_variants(table3_ctx, benchmark, results_dir):
    table = benchmark.pedantic(
        lambda: run_table3(table3_ctx), rounds=1, iterations=1
    )
    emit(table, results_dir, "table3")

    hat_sizes = table.column("RR size θ̂ (KB)")
    std_sizes = table.column("RR size θ (KB)")
    for hat, std in zip(hat_sizes, std_sizes):
        # Paper: ~9x. Accept anything clearly >2x to be robust to scale.
        assert hat > 2 * std, "theta_hat index should be much larger"
    hat_time = table.column("RR time θ̂ (s)")
    std_time = table.column("RR time θ (s)")
    for hat, std in zip(hat_time, std_time):
        assert hat > std, "theta_hat index should be slower to build"
