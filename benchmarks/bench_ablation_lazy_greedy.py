"""Ablation: plain argmax greedy vs CELF-style lazy greedy.

The paper's Algorithm 2 runs the classic greedy; our implementation uses
the lazy variant on the query path after verifying bit-identical output
(tests/test_core_coverage.py).  This bench quantifies the speedup the
lazy heap buys on realistic RR-set collections.
"""

import numpy as np
import pytest

from repro.core.coverage import (
    CoverageInstance,
    greedy_max_coverage,
    lazy_greedy_max_coverage,
)
from repro.core.sampler import sample_rr_sets, sample_uniform_roots
from repro.graph.generators import twitter_like
from repro.propagation.ic import IndependentCascade


@pytest.fixture(scope="module")
def instance():
    model = IndependentCascade(twitter_like(2000, avg_degree=12, rng=88))
    rng = np.random.default_rng(89)
    roots = sample_uniform_roots(model.graph.n, 800, rng)
    return CoverageInstance(model.graph.n, sample_rr_sets(model, roots, rng))


def test_plain_greedy(instance, benchmark):
    seeds, _ = benchmark(lambda: greedy_max_coverage(instance, 30))
    assert len(seeds) == 30


def test_lazy_greedy(instance, benchmark):
    seeds, _ = benchmark(lambda: lazy_greedy_max_coverage(instance, 30))
    assert len(seeds) == 30


def test_outputs_identical(instance):
    assert greedy_max_coverage(instance, 30) == lazy_greedy_max_coverage(
        instance, 30
    )
