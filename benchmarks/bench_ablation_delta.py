"""Ablation: IRR partition size δ (the paper fixes δ = 100).

DESIGN.md calls out δ as the IRR index's key tuning knob: small
partitions give fine-grained incremental loading (fewer RR sets touched,
more I/Os), large partitions amortise I/O but load more data per step.
This bench sweeps δ on the default twitter-like dataset and records the
query-cost trade-off the paper's fixed setting sits on.
"""


from repro.core.irr_index import IRRIndex, IRRIndexBuilder
from repro.core.query import KBTIMQuery
from repro.experiments.reporting import Table

from conftest import emit

DELTAS = (10, 50, 100, 200)


def test_ablation_partition_size(ctx, benchmark, results_dir):
    ds = ctx.default_dataset("twitter")
    tables = ctx.keyword_tables(ds)
    policy = ctx.scale.policy

    def sweep():
        result = Table(
            "Ablation: IRR partition size delta",
            ("delta", "I/Os", "RR sets loaded", "partitions", "time (s)"),
        )
        query = KBTIMQuery(
            tuple(sorted(tables)[:3]), ctx.scale.default_k
        )
        for delta in DELTAS:
            path = f"{ctx.workdir}/{ds.name}-ablation-{delta}.irr"
            IRRIndexBuilder(
                ds.ic_model, ds.profiles, policy=policy, delta=delta
            ).build(path, tables=tables)
            with IRRIndex(path) as index:
                answer = index.query(query)
            result.add_row(
                delta,
                answer.stats.io.read_calls,
                answer.stats.rr_sets_loaded,
                answer.stats.partitions_loaded,
                answer.stats.elapsed_seconds,
            )
        result.add_note("paper setting: delta = 100")
        return result

    table = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(table, results_dir, "ablation_delta")

    ios = table.column("I/Os")
    partitions = table.column("partitions")
    # Finer partitions require at least as many partition loads.
    assert partitions[0] >= partitions[-1]
    assert all(v > 0 for v in ios)
