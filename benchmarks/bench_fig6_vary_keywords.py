"""Figure 6: execution time and RR sets loaded while varying |Q.T|.

Paper shape: the index methods stay orders of magnitude below WRIS across
query lengths 1-6; the number of RR sets the indexes touch grows with the
number of query keywords (more per-keyword prefixes to merge).
"""

import numpy as np

from repro.experiments.figures import run_figure6

from conftest import emit


def test_figure6_vary_keywords(ctx, benchmark, results_dir):
    table = benchmark.pedantic(lambda: run_figure6(ctx), rounds=1, iterations=1)
    emit(table, results_dir, "figure6")

    wris = np.array(table.column("WRIS time (s)"))
    rr = np.array(table.column("RR time (s)"))
    irr = np.array(table.column("IRR time (s)"))
    assert rr.mean() < wris.mean()
    assert irr.mean() < wris.mean()

    # More keywords -> more RR sets considered by the RR index.
    for dataset in {str(r[0]) for r in table.rows}:
        rows = sorted(
            (r for r in table.rows if str(r[0]) == dataset), key=lambda r: r[1]
        )
        assert rows[-1][5] >= rows[0][5]
