"""Micro-benchmarks for the hot paths (proper pytest-benchmark loops).

Not a paper table — these measure the primitives whose costs the paper's
architecture trades against each other: online RR sampling (what WRIS
pays per query) versus decode-from-disk (what the indexes pay), greedy
coverage, codec throughput, and paged reads.
"""

import numpy as np
import pytest

from repro.core.coverage import CoverageInstance, lazy_greedy_max_coverage
from repro.core.sampler import sample_rr_sets, sample_uniform_roots
from repro.graph.generators import twitter_like
from repro.propagation.ic import IndependentCascade
from repro.storage.compression import Codec, compress_ids, decompress_ids
from repro.storage.pager import BufferPool, PagedFile
from repro.storage.records import RRSetsRecord


@pytest.fixture(scope="module")
def model():
    return IndependentCascade(twitter_like(2000, avg_degree=12, rng=77))


@pytest.fixture(scope="module")
def rr_sets(model):
    rng = np.random.default_rng(78)
    roots = sample_uniform_roots(model.graph.n, 500, rng)
    return sample_rr_sets(model, roots, rng)


def test_online_rr_sampling_throughput(model, benchmark):
    """What WRIS pays per query, per 100 RR sets (batched fast path)."""
    rng = np.random.default_rng(79)
    roots = sample_uniform_roots(model.graph.n, 100, rng)

    benchmark(lambda: sample_rr_sets(model, roots, rng))


#: One keyword's offline sampling pass at the default-scale θ cap — the
#: workload Algorithm 1 pays per keyword.
_BATCH_THETA = 1200


def test_rr_sampling_scalar_reference(model, benchmark):
    """The pre-batching per-root walk, kept as the statistical reference.

    Paired with :func:`test_rr_sampling_batched` on an identical θ=1200
    workload (one keyword's offline pass at the default-scale cap) — the
    ratio of the two is the batched-kernel speedup BENCH_pr1.json records.
    """
    rng = np.random.default_rng(83)
    roots = sample_uniform_roots(model.graph.n, _BATCH_THETA, rng)

    benchmark(lambda: [model.sample_rr_set(int(root), rng) for root in roots])


def test_rr_sampling_batched(model, benchmark):
    """The batched multi-root reverse BFS on the same θ=1200 workload."""
    rng = np.random.default_rng(83)
    roots = sample_uniform_roots(model.graph.n, _BATCH_THETA, rng)

    benchmark(lambda: model.sample_rr_sets_batch(roots, rng))


def test_rr_record_decode_throughput(rr_sets, benchmark):
    """What the RR index pays per query for the same 500 sets."""
    record = RRSetsRecord.encode(rr_sets, Codec.PFOR)

    benchmark(lambda: RRSetsRecord.decode_all(record))


def test_greedy_coverage(rr_sets, model, benchmark):
    instance = CoverageInstance(model.graph.n, rr_sets)

    benchmark(lambda: lazy_greedy_max_coverage(instance, 20))


def test_coverage_instance_build(rr_sets, model, benchmark):
    """Flat-CSR instance construction (argsort+bincount inversion)."""
    benchmark(lambda: CoverageInstance(model.graph.n, rr_sets))


@pytest.mark.parametrize("codec", [Codec.VARINT, Codec.PFOR])
def test_codec_encode(codec, benchmark):
    ids = np.sort(
        np.random.default_rng(80).choice(10**6, size=5000, replace=False)
    ).astype(np.int64)

    benchmark(lambda: compress_ids(ids, codec))


@pytest.mark.parametrize("codec", [Codec.VARINT, Codec.PFOR])
def test_codec_decode(codec, benchmark):
    ids = np.sort(
        np.random.default_rng(81).choice(10**6, size=5000, replace=False)
    ).astype(np.int64)
    blob = compress_ids(ids, codec)

    benchmark(lambda: decompress_ids(blob))


def test_paged_random_reads(tmp_path_factory, benchmark):
    path = tmp_path_factory.mktemp("pager") / "blob.bin"
    path.write_bytes(b"\xab" * (1 << 20))
    rng = np.random.default_rng(82)
    offsets = rng.integers(0, (1 << 20) - 256, size=200)

    def read_all():
        pool = BufferPool(32)
        with PagedFile(path, pool=pool) as f:
            for offset in offsets:
                f.read(int(offset), 256)

    benchmark(read_all)
