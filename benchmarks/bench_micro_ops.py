"""Micro-benchmarks for the hot paths (proper pytest-benchmark loops).

Not a paper table — these measure the primitives whose costs the paper's
architecture trades against each other: online RR sampling (what WRIS
pays per query) versus decode-from-disk (what the indexes pay), greedy
coverage, codec throughput, and paged reads.
"""

import numpy as np
import pytest

from repro.core.coverage import CoverageInstance, lazy_greedy_max_coverage
from repro.core.irr_index import IRRIndex, IRRIndexBuilder
from repro.core.query import KBTIMQuery
from repro.core.rr_index import RRIndex, RRIndexBuilder
from repro.core.sampler import sample_rr_sets, sample_uniform_roots
from repro.core.theta import ThetaPolicy
from repro.graph.generators import twitter_like
from repro.profiles.generators import zipf_profiles
from repro.profiles.topics import TopicSpace
from repro.propagation.ic import IndependentCascade
from repro.propagation.lt import LinearThreshold
from repro.storage.compression import Codec, compress_ids, decompress_ids
from repro.storage.pager import BufferPool, PagedFile
from repro.storage.records import RRSetsRecord
from repro.storage.varint import (
    decode_varints,
    decode_varints_block,
    encode_varints,
)


@pytest.fixture(scope="module")
def model():
    return IndependentCascade(twitter_like(2000, avg_degree=12, rng=77))


@pytest.fixture(scope="module")
def lt_model():
    return LinearThreshold(twitter_like(2000, avg_degree=12, rng=77), weight_rng=7)


@pytest.fixture(scope="module")
def rr_sets(model):
    rng = np.random.default_rng(78)
    roots = sample_uniform_roots(model.graph.n, 500, rng)
    return sample_rr_sets(model, roots, rng)


def test_online_rr_sampling_throughput(model, benchmark):
    """What WRIS pays per query, per 100 RR sets (batched fast path)."""
    rng = np.random.default_rng(79)
    roots = sample_uniform_roots(model.graph.n, 100, rng)

    benchmark(lambda: sample_rr_sets(model, roots, rng))


#: One keyword's offline sampling pass at the default-scale θ cap — the
#: workload Algorithm 1 pays per keyword.
_BATCH_THETA = 1200


def test_rr_sampling_scalar_reference(model, benchmark):
    """The pre-batching per-root walk, kept as the statistical reference.

    Paired with :func:`test_rr_sampling_batched` on an identical θ=1200
    workload (one keyword's offline pass at the default-scale cap) — the
    ratio of the two is the batched-kernel speedup BENCH_pr1.json records.
    """
    rng = np.random.default_rng(83)
    roots = sample_uniform_roots(model.graph.n, _BATCH_THETA, rng)

    benchmark(lambda: [model.sample_rr_set(int(root), rng) for root in roots])


def test_rr_sampling_batched(model, benchmark):
    """The batched multi-root reverse BFS on the same θ=1200 workload."""
    rng = np.random.default_rng(83)
    roots = sample_uniform_roots(model.graph.n, _BATCH_THETA, rng)

    benchmark(lambda: model.sample_rr_sets_batch(roots, rng))


def test_lt_sampling_scalar_reference(lt_model, benchmark):
    """The per-root LT reverse walk, kept as the statistical reference.

    Paired with :func:`test_lt_sampling_batched` on an identical θ=1200
    workload; the ratio of the two is the single-pick-kernel speedup
    BENCH_pr2.json records.
    """
    rng = np.random.default_rng(84)
    roots = sample_uniform_roots(lt_model.graph.n, _BATCH_THETA, rng)

    benchmark(lambda: [lt_model.sample_rr_set(int(root), rng) for root in roots])


def test_lt_sampling_batched(lt_model, benchmark):
    """The batched single-pick reverse walk on the same θ=1200 workload."""
    rng = np.random.default_rng(84)
    roots = sample_uniform_roots(lt_model.graph.n, _BATCH_THETA, rng)

    benchmark(lambda: lt_model.sample_rr_sets_batch(roots, rng))


@pytest.fixture(scope="module")
def irr_index_path(tmp_path_factory):
    """A small IRR index over a synthetic world (paid once per session)."""
    model = IndependentCascade(twitter_like(1000, avg_degree=10, rng=91))
    topics = TopicSpace.default(12)
    profiles = zipf_profiles(model.graph.n, topics, rng=92)
    policy = ThetaPolicy(epsilon=0.5, K=50, cap=2000)
    path = str(tmp_path_factory.mktemp("irr_bench") / "index.irr")
    IRRIndexBuilder(model, profiles, policy=policy, delta=50, rng=93).build(path)
    return path


#: The default IRR benchmark workload: single- and multi-keyword queries
#: at mixed Q.k, the same mix the BENCH_pr2.json latency numbers use.
_IRR_QUERIES = (
    KBTIMQuery(["music"], 10),
    KBTIMQuery(["music", "book"], 10),
    KBTIMQuery(["sport", "book"], 25),
    KBTIMQuery(["music", "book", "sport"], 10),
)


def test_irr_query_latency_warm(irr_index_path, benchmark):
    """NRA query latency with the decoded-partition memo warm.

    What a long-lived reader pays per query once the hot partitions'
    decodes are memoised (reads still hit the pager every time).
    """
    with IRRIndex(irr_index_path) as index:
        for query in _IRR_QUERIES:  # prime the decode memo
            index.query(query)

        benchmark(lambda: [index.query(q) for q in _IRR_QUERIES])


def test_irr_query_latency_cold_decode(irr_index_path, benchmark):
    """NRA query latency with the decode memo disabled (capacity 0).

    The constructor-parameterised cache size sweeps cold behaviour
    without monkeypatching: every partition load pays its full decode.
    """
    with IRRIndex(irr_index_path, decode_cache_partitions=0) as index:
        benchmark(lambda: [index.query(q) for q in _IRR_QUERIES])


def test_rr_record_decode_throughput(rr_sets, benchmark):
    """What the RR index pays per query for the same 500 sets."""
    record = RRSetsRecord.encode(rr_sets, Codec.PFOR)

    benchmark(lambda: RRSetsRecord.decode_all(record))


#: One record's worth of gap varints — the stream shape the block varint
#: decoder sees on the cold query path (VARINT-codec lists and PFoR
#: exception pairs are back-to-back varint runs).
_VARINT_STREAM = encode_varints(
    np.random.default_rng(85).integers(1, 1 << 20, size=5000).tolist()
)


def test_varint_decode_scalar_reference(benchmark):
    """The byte-at-a-time walk, kept as the bit-exactness reference.

    Paired with :func:`test_varint_decode_block` on the identical
    5000-varint stream; the ratio is the block-decoder speedup
    BENCH_pr3.json records.
    """
    benchmark(lambda: decode_varints(_VARINT_STREAM, 5000))


def test_varint_decode_block(benchmark):
    """The vectorised block decoder on the same 5000-varint stream."""
    benchmark(lambda: decode_varints_block(_VARINT_STREAM, 5000))


@pytest.fixture(scope="module")
def rr_index_path(tmp_path_factory):
    """A small RR index over the same world as the IRR bench fixture."""
    model = IndependentCascade(twitter_like(1000, avg_degree=10, rng=91))
    topics = TopicSpace.default(12)
    profiles = zipf_profiles(model.graph.n, topics, rng=92)
    policy = ThetaPolicy(epsilon=0.5, K=50, cap=2000)
    path = str(tmp_path_factory.mktemp("rr_bench") / "index.rr")
    RRIndexBuilder(model, profiles, policy=policy, rng=93).build(path)
    return path


def test_rr_query_latency_cold_uncached(rr_index_path, benchmark):
    """RR query latency with the prefix cache disabled (capacity 0).

    Every query re-reads and re-decodes its keyword blocks — the cold
    decode-per-query behaviour the hot-prefix cache removes.
    """
    with RRIndex(rr_index_path, prefix_cache_keywords=0) as index:
        benchmark(lambda: [index.query(q) for q in _IRR_QUERIES])


def test_rr_query_latency_prefix_cached(rr_index_path, benchmark):
    """RR query latency with the decoded-prefix cache warm.

    The same query mix served by slicing cached keyword prefixes; the
    ratio against :func:`test_rr_query_latency_cold_uncached` is the
    hot-prefix-cache speedup BENCH_pr3.json records.
    """
    with RRIndex(rr_index_path) as index:
        for query in _IRR_QUERIES:  # prime the prefix cache
            index.query(query)

        benchmark(lambda: [index.query(q) for q in _IRR_QUERIES])


def test_greedy_coverage(rr_sets, model, benchmark):
    instance = CoverageInstance(model.graph.n, rr_sets)

    benchmark(lambda: lazy_greedy_max_coverage(instance, 20))


def test_coverage_instance_build(rr_sets, model, benchmark):
    """Flat-CSR instance construction (argsort+bincount inversion)."""
    benchmark(lambda: CoverageInstance(model.graph.n, rr_sets))


@pytest.mark.parametrize("codec", [Codec.VARINT, Codec.PFOR])
def test_codec_encode(codec, benchmark):
    ids = np.sort(
        np.random.default_rng(80).choice(10**6, size=5000, replace=False)
    ).astype(np.int64)

    benchmark(lambda: compress_ids(ids, codec))


@pytest.mark.parametrize("codec", [Codec.VARINT, Codec.PFOR])
def test_codec_decode(codec, benchmark):
    ids = np.sort(
        np.random.default_rng(81).choice(10**6, size=5000, replace=False)
    ).astype(np.int64)
    blob = compress_ids(ids, codec)

    benchmark(lambda: decompress_ids(blob))


def test_paged_random_reads(tmp_path_factory, benchmark):
    path = tmp_path_factory.mktemp("pager") / "blob.bin"
    path.write_bytes(b"\xab" * (1 << 20))
    rng = np.random.default_rng(82)
    offsets = rng.integers(0, (1 << 20) - 256, size=200)

    def read_all():
        pool = BufferPool(32)
        with PagedFile(path, pool=pool) as f:
            for offset in offsets:
                f.read(int(offset), 256)

    benchmark(read_all)
