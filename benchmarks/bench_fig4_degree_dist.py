"""Figure 4: in-degree distributions of both dataset families.

Paper shape: both distributions are heavy-tailed on log-log axes, with
Twitter's tail reaching far larger in-degrees (hubs followed by a large
share of the network) than the news graph's.
"""

from repro.experiments.figures import run_figure4

from conftest import emit


def test_figure4_in_degree_distributions(ctx, benchmark, results_dir):
    table = benchmark.pedantic(lambda: run_figure4(ctx), rounds=1, iterations=1)
    emit(table, results_dir, "figure4")

    by_family = {"news": [], "twitter": []}
    for row in table.rows:
        family = "news" if str(row[0]).startswith("news") else "twitter"
        by_family[family].append(row)

    news_n = ctx.default_dataset("news").graph.n
    twitter_n = ctx.default_dataset("twitter").graph.n
    news_max = max(r[1] for r in by_family["news"]) / news_n
    twitter_max = max(r[1] for r in by_family["twitter"]) / twitter_n
    # Twitter hubs reach a larger in-degree relative to graph size.
    assert twitter_max > news_max
