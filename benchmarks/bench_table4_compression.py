"""Table 4: index disk space and build time, uncompressed vs compressed.

Paper shape: FastPFOR-style compression cuts disk use ~50% (news) / ~40%
(Twitter) while build time stays in the same ballpark.  Our pure-Python
PFoR costs relatively more CPU at build time than SIMD FastPFOR; the
space shape is the claim under test.
"""

from repro.experiments.tables import run_table4

from conftest import emit


def test_table4_compression(ctx, benchmark, results_dir):
    table = benchmark.pedantic(lambda: run_table4(ctx), rounds=1, iterations=1)
    emit(table, results_dir, "table4")

    for kind in ("RR", "IRR"):
        raw = table.column(f"{kind} raw (KB)")
        pfor = table.column(f"{kind} pfor (KB)")
        for r, p in zip(raw, pfor):
            # Paper: >= ~40% reduction. Require at least 30%.
            assert p < 0.7 * r, f"{kind}: compression should save >= 30%"
