"""Table 7: influence spread of the seed sets from each method.

Paper shape: WRIS, RR(θ̂), RR and IRR return statistically
indistinguishable expected influence at every Q.k — the disk indexes buy
speed, not quality.  Evaluated here by independent forward Monte-Carlo
simulation of each method's seed set.
"""

from repro.experiments.tables import run_table7

from conftest import emit


def test_table7_influence_parity(ctx, benchmark, results_dir):
    table = benchmark.pedantic(
        lambda: run_table7(ctx), rounds=1, iterations=1
    )
    emit(table, results_dir, "table7")

    wris = table.column("WRIS")
    rr = table.column("RR")
    irr = table.column("IRR")
    for w, r, i in zip(wris, rr, irr):
        # RR and IRR share samples: identical seeds, identical spread.
        assert i == r
        # Online vs offline parity within Monte-Carlo noise (paper: ~0.1%;
        # our θ cap and tiny graphs warrant a wider band).
        assert abs(w - r) <= 0.35 * max(w, r), (w, r)
