"""Figure 5: execution time and RR sets loaded while varying Q.k.

Paper shape: the disk indexes answer queries orders of magnitude faster
than online WRIS (160x / 434x on Twitter); the RR index loads a
θ-determined, k-invariant number of sets while IRR's loads grow with Q.k
and stay below RR's on the twitter-like graph.

The pure-Python gap between WRIS and the indexes is smaller than C++'s
(decoding costs relatively more than SIMD; sampling costs relatively less
than a disk-resident testbed) — EXPERIMENTS.md discusses the deltas.  The
bench asserts the *ordering*, which is the transferable claim.
"""

import numpy as np

from repro.experiments.figures import run_figure5

from conftest import emit


def test_figure5_vary_k(ctx, benchmark, results_dir):
    table = benchmark.pedantic(lambda: run_figure5(ctx), rounds=1, iterations=1)
    emit(table, results_dir, "figure5")

    wris = np.array(table.column("WRIS time (s)"))
    rr = np.array(table.column("RR time (s)"))
    irr = np.array(table.column("IRR time (s)"))
    # Indexes beat online sampling clearly on average (paper: 160x/434x;
    # pure Python attenuates the ratio — see EXPERIMENTS.md).
    assert rr.mean() < wris.mean()
    assert irr.mean() < wris.mean()

    # IRR's incremental loading grows with k and never exceeds RR's
    # θ^Q-determined prefix (it converges to it for large k).
    for dataset in {str(r[0]) for r in table.rows}:
        rows = sorted(
            (r for r in table.rows if str(r[0]) == dataset), key=lambda r: r[1]
        )
        rr_loads = [r[5] for r in rows]
        irr_loads = [r[6] for r in rows]
        assert irr_loads[-1] >= irr_loads[0]
        for rr_load, irr_load in zip(rr_loads, irr_loads):
            assert irr_load <= rr_load + 1
