"""Bundle a benchmark run's CSV tables into one JSON artifact.

The benchmark suite persists every result table as CSV under a results
directory (``benchmarks/results/`` by default, ``KBTIM_BENCH_RESULTS``
in CI).  CI's bench-smoke job runs the suite at smoke scale and uploads
the output of this script as a workflow artifact, so every PR leaves a
machine-readable perf breadcrumb shaped like the checked-in
``BENCH_pr*.json`` files — same commit, same runner, diffable across
PRs.

Usage::

    python benchmarks/collect_results.py \
        --results-dir benchmarks/results --out bench_results.json
"""

from __future__ import annotations

import argparse
import csv
import json
import os
import platform
import sys
from typing import Dict, List


def collect(results_dir: str) -> Dict[str, List[Dict[str, str]]]:
    """Read every ``*.csv`` table in ``results_dir`` into row dicts."""
    tables: Dict[str, List[Dict[str, str]]] = {}
    for name in sorted(os.listdir(results_dir)):
        if not name.endswith(".csv"):
            continue
        path = os.path.join(results_dir, name)
        with open(path, newline="") as fh:
            rows = list(csv.DictReader(fh))
        tables[name[: -len(".csv")]] = rows
    return tables


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--results-dir",
        default=os.path.join(os.path.dirname(os.path.abspath(__file__)), "results"),
        help="directory holding the benchmark CSV tables",
    )
    parser.add_argument("--out", required=True, help="output JSON path")
    args = parser.parse_args(argv)

    if not os.path.isdir(args.results_dir):
        print(f"error: results dir {args.results_dir!r} does not exist", file=sys.stderr)
        return 1
    tables = collect(args.results_dir)
    payload = {
        "scale": os.environ.get("KBTIM_BENCH_SCALE", "default"),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "commit": os.environ.get("GITHUB_SHA", ""),
        "tables": tables,
    }
    os.makedirs(os.path.dirname(os.path.abspath(args.out)), exist_ok=True)
    with open(args.out, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.out}: {len(tables)} tables")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
