"""Table 8: example KB-TIM query results, targeted vs untargeted.

Paper shape: WRIS under IC and LT surfaces keyword-relevant seeds
("kb.vmware.com" for *software*, "journals.aol.com" for *journal*), while
plain RIS returns one global seed set with "no clue between its top seeds
and the query keywords".  We assert the structural half of that claim:
RIS emits exactly one row per dataset (keyword column N.A.), and the
targeted rows differ across keywords.
"""

from repro.experiments.tables import run_table8

from conftest import emit


def test_table8_example_queries(ctx, benchmark, results_dir):
    table = benchmark.pedantic(lambda: run_table8(ctx), rounds=1, iterations=1)
    emit(table, results_dir, "table8")

    ris_rows = [r for r in table.rows if r[1] == "RIS"]
    assert len(ris_rows) == 2
    for dataset in ("news", "twitter"):
        rows = [
            r
            for r in table.rows
            if str(r[0]).startswith(dataset) and r[1] == "WRIS(IC)"
        ]
        keywords = {r[2] for r in rows}
        assert len(keywords) == 2
        seed_lists = [r[3] for r in rows]
        # Targeted seed lists should differ between keywords.
        assert seed_lists[0] != seed_lists[1]
