"""Table 5: Σθ_w and mean RR-set size as the graph grows.

Paper shape: the two factors pull in opposite directions — Σθ_w grows
with |V| (the bounds scale with ln|V| and the relevance mass) while the
mean RR-set size falls because the published size sequences get *sparser*
(Table 2's decreasing average degree).
"""

from repro.experiments.tables import run_table5

from conftest import emit


def test_table5_index_stats(ctx, benchmark, results_dir):
    table = benchmark.pedantic(lambda: run_table5(ctx), rounds=1, iterations=1)
    emit(table, results_dir, "table5")

    rows_by_family = {"news": [], "twitter": []}
    for row in table.rows:
        family = "news" if str(row[0]).startswith("news") else "twitter"
        rows_by_family[family].append(row)

    for family, rows in rows_by_family.items():
        rows.sort(key=lambda r: r[1])  # by |V|
        sizes = [r[3] for r in rows]
        # Mean RR-set size must fall from smallest to largest graph.
        assert sizes[-1] < sizes[0], f"{family}: RR size should fall with |V|"
