#!/usr/bin/env python
"""Walkthrough of the paper's running example (Figure 1, Examples 1-3).

Reproduces, with exact arithmetic where the paper gives it:

* Example 1 — `E[I({e, g})] = 4.8125` with per-node activation
  probabilities (1, 0.75, 0.6875, 0.375, 1, 0, 1);
* Example 2 — maximum coverage over four RR sets; `{e, f}` covers all;
* Example 3 — the `({music}, 2)` KB-TIM query prefers music-relevant
  seeds, diverging from the untargeted optimum `{e, g}`.

Run:  python examples/paper_walkthrough.py
"""

import numpy as np

from repro import (
    CoverageInstance,
    IndependentCascade,
    KBTIMQuery,
    exact_activation_probabilities,
    exact_optimal_seed_set,
    exact_spread,
    greedy_max_coverage,
    wris_query,
)
from repro.datasets.paper_example import (
    NODE_IDS,
    NODE_NAMES,
    paper_example_graph,
    paper_example_profiles,
)


def main() -> None:
    graph = paper_example_graph()
    profiles = paper_example_profiles()
    model = IndependentCascade(graph)

    print("Figure 1 graph (reconstructed; see DESIGN.md):")
    for u, v, p in graph.edges():
        print(f"  {NODE_NAMES[u]} -> {NODE_NAMES[v]}  p={p}")

    # ----- Example 1 -------------------------------------------------
    print("\nExample 1: exact influence of S = {e, g}")
    seeds = [NODE_IDS["e"], NODE_IDS["g"]]
    probs = exact_activation_probabilities(graph, seeds)
    for name in NODE_NAMES:
        print(f"  p(S -> {name}) = {probs[NODE_IDS[name]]:.4f}")
    total = exact_spread(graph, seeds)
    print(f"  E[I(S)] = {total}  (paper: 4.8125)")
    assert abs(total - 4.8125) < 1e-12

    best, value = exact_optimal_seed_set(graph, 2)
    print(
        f"  brute-force optimal 2-seed set: "
        f"{{{', '.join(NODE_NAMES[v] for v in best)}}} with {value}"
    )

    # ----- Example 2 -------------------------------------------------
    print("\nExample 2: greedy maximum coverage over 4 random RR sets")
    a, b, d, e, f = (NODE_IDS[x] for x in "abdef")
    rr_sets = [
        np.array(sorted([b, d, f])),
        np.array([e]),
        np.array(sorted([d, f])),
        np.array(sorted([a, b, e])),
    ]
    instance = CoverageInstance(graph.n, rr_sets)
    seeds2, marginals = greedy_max_coverage(instance, 2)
    covered_by_ef = set(instance.inverted[e].tolist()) | set(
        instance.inverted[f].tolist()
    )
    print(f"  greedy picks: {[NODE_NAMES[s] for s in seeds2]} "
          f"covering {sum(marginals)} sets")
    print(f"  {{e, f}} covers {len(covered_by_ef)}/4 sets "
          "(the paper's chosen tie-break)")

    # ----- Example 3 -------------------------------------------------
    print("\nExample 3: targeted query Q = ({music}, 2)")
    weights = profiles.phi_vector(["music"])
    targeted, targeted_value = exact_optimal_seed_set(graph, 2, weights)
    print(
        f"  exact targeted optimum: "
        f"{{{', '.join(NODE_NAMES[v] for v in targeted)}}} "
        f"with E[I^music] = {targeted_value:.4f}"
    )
    print("  (differs from the untargeted {e, g}: g only cares about cars)")

    answer = wris_query(
        model, profiles, KBTIMQuery(["music"], 2), theta_override=20_000, rng=1
    )
    achieved = exact_spread(graph, sorted(answer.seeds), weights)
    print(
        f"  WRIS (theta=20000) returns "
        f"{{{', '.join(NODE_NAMES[v] for v in answer.seeds)}}} "
        f"achieving {achieved:.4f} = {achieved / targeted_value:.1%} of optimal"
    )


if __name__ == "__main__":
    main()
