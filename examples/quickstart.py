#!/usr/bin/env python
"""Quickstart: answer a KB-TIM query end to end in under a minute.

Builds a small twitter-like social network with topic profiles, then asks:
*"which 10 users maximise the expected influence over people interested in
music or movies?"* — first online (WRIS, Section 3.2 of the paper), then
through the disk-based RR index (Section 4), and shows that the index
answers the same query much faster with matching quality.

Run:  python examples/quickstart.py
"""

import os
import tempfile
import time

from repro import (
    IndependentCascade,
    KBTIMQuery,
    RRIndex,
    RRIndexBuilder,
    ThetaPolicy,
    TopicSpace,
    estimate_spread,
    twitter_like,
    wris_query,
    zipf_profiles,
)


def main() -> None:
    # --- the social network substrate -------------------------------
    print("building a twitter-like social graph ...")
    graph = twitter_like(1500, avg_degree=12, rng=7)
    topics = TopicSpace.default(16)
    profiles = zipf_profiles(graph.n, topics, rng=7)
    model = IndependentCascade(graph)
    print(f"  {graph!r}")
    print(f"  {profiles!r}")

    query = KBTIMQuery(["music", "movies"], k=10)
    policy = ThetaPolicy(epsilon=0.5, K=50, cap=1000, online_cap=20_000)

    # --- online baseline: WRIS --------------------------------------
    print(f"\nanswering {query!r} online with WRIS ...")
    started = time.perf_counter()
    online = wris_query(model, profiles, query, policy=policy, rng=7)
    online_seconds = time.perf_counter() - started
    print(f"  seeds: {list(online.seeds)}")
    print(f"  estimated targeted influence: {online.estimated_influence:.2f}")
    print(f"  RR sets sampled online: {online.theta}")
    print(f"  took {online_seconds:.2f}s")

    # --- offline index, online query --------------------------------
    path = os.path.join(tempfile.mkdtemp(prefix="kbtim-"), "ads.rr")
    print(f"\nbuilding the RR index offline at {path} ...")
    report = RRIndexBuilder(model, profiles, policy=policy, rng=7).build(path)
    print(
        f"  {len(report.keywords)} keywords, {report.theta_total:,} RR sets, "
        f"{report.file_bytes / 1024:.0f} KB, built in {report.seconds:.2f}s"
    )

    with RRIndex(path) as index:
        started = time.perf_counter()
        offline = index.query(query)
        offline_seconds = time.perf_counter() - started
    print(f"  index answer: {list(offline.seeds)}")
    print(
        f"  took {offline_seconds:.3f}s "
        f"({online_seconds / max(offline_seconds, 1e-9):.0f}x faster than WRIS), "
        f"{offline.stats.io.read_calls} disk reads"
    )

    # --- verify quality by independent simulation -------------------
    weights = profiles.phi_vector(query.keywords)
    online_spread = estimate_spread(
        model, online.seeds, n_samples=300, weights=weights, rng=7
    )
    offline_spread = estimate_spread(
        model, offline.seeds, n_samples=300, weights=weights, rng=7
    )
    print("\nindependent Monte-Carlo check of the two seed sets:")
    print(f"  WRIS    seed set spread: {online_spread.mean:8.2f}")
    print(f"  RR idx  seed set spread: {offline_spread.mean:8.2f}")
    print("(near-identical influence at a fraction of the query cost — the")
    print(" paper's Table 7 + Figure 5 claims in miniature)")


if __name__ == "__main__":
    main()
