#!/usr/bin/env python
"""The paper's deployment architecture: offline sampling, online serving.

An ad platform cannot run Monte-Carlo sampling inside an ad auction.  The
paper's answer (Sections 4-5) is to move sampling offline into per-keyword
disk indexes and leave only bounded loading + greedy coverage online.

This example builds both index formats from one shared sampling pass,
then serves a mixed stream of advertiser queries from each and prints a
latency/I-O ledger — including the Theorem 3 check that both indexes
return identical impact scores.

Run:  python examples/offline_index_pipeline.py
"""

import os
import tempfile
import time

from repro import (
    IRRIndex,
    IRRIndexBuilder,
    IndependentCascade,
    RRIndex,
    RRIndexBuilder,
    ThetaPolicy,
    TopicSpace,
    twitter_like,
    zipf_profiles,
)
from repro.datasets.workload import make_workload


def main() -> None:
    print("== offline phase ==")
    graph = twitter_like(1200, avg_degree=10, rng=23)
    topics = TopicSpace.default(16)
    profiles = zipf_profiles(graph.n, topics, rng=23)
    model = IndependentCascade(graph)
    policy = ThetaPolicy(epsilon=0.6, K=50, cap=800)

    workdir = tempfile.mkdtemp(prefix="kbtim-pipeline-")
    rr_path = os.path.join(workdir, "platform.rr")
    irr_path = os.path.join(workdir, "platform.irr")

    builder = RRIndexBuilder(model, profiles, policy=policy, rng=23)
    started = time.perf_counter()
    tables = builder.sample()  # ONE sampling pass feeds both formats
    sample_seconds = time.perf_counter() - started
    rr_report = builder.build(rr_path, tables=tables)
    irr_report = IRRIndexBuilder(
        model, profiles, policy=policy, delta=50, rng=23
    ).build(irr_path, tables=tables)
    print(f"  sampling pass          : {sample_seconds:6.2f}s")
    print(f"  RR index  ({rr_report.file_bytes/1024:7.0f} KB): "
          f"{rr_report.seconds:6.2f}s write")
    print(f"  IRR index ({irr_report.file_bytes/1024:7.0f} KB): "
          f"{irr_report.seconds:6.2f}s write")

    print("\n== online phase: serving advertiser queries ==")
    workload = [
        query
        for length in (1, 2, 3, 5)
        for query in make_workload(
            profiles, length=length, k=10, n_queries=2, rng=length
        )
    ]

    header = (
        f"{'query keywords':42} {'RR ms':>8} {'RR I/O':>7} "
        f"{'IRR ms':>8} {'IRR I/O':>8} {'scores equal':>13}"
    )
    print(header)
    print("-" * len(header))
    with RRIndex(rr_path) as rr, IRRIndex(irr_path) as irr:
        for query in workload:
            a = rr.query(query)
            b = irr.query(query)
            equal = a.marginal_coverages == b.marginal_coverages
            print(
                f"{', '.join(map(str, query.keywords)):42} "
                f"{a.stats.elapsed_seconds*1e3:8.1f} "
                f"{a.stats.io.read_calls:7d} "
                f"{b.stats.elapsed_seconds*1e3:8.1f} "
                f"{b.stats.io.read_calls:8d} "
                f"{str(equal):>13}"
            )
            assert equal, "Theorem 3 violated!"

    print("\nEvery query was served from disk in milliseconds with a")
    print("handful of reads, and the two index formats agreed on every")
    print("impact score (Theorem 3).")


if __name__ == "__main__":
    main()
