#!/usr/bin/env python
"""Propagation-model comparison: IC vs LT vs general triggering.

Section 6.6 of the paper reports KB-TIM results under both the
Independent Cascade and Linear Threshold models (Table 8) and argues the
whole WRIS machinery is model-agnostic because reverse-reachable sampling
is defined for any triggering model.

This example runs the same advertisement under three models on the same
graph and profiles — including IC re-expressed as a *general triggering*
model, which must agree with native IC statistically.

Run:  python examples/model_comparison.py
"""


from repro import (
    GeneralTriggering,
    IndependentCascade,
    KBTIMQuery,
    LinearThreshold,
    ThetaPolicy,
    TopicSpace,
    estimate_spread,
    twitter_like,
    wris_query,
    zipf_profiles,
)


def describe(profiles, topics, seeds, keyword):
    """Annotate each seed with its preference for the ad keyword."""
    parts = []
    for seed in seeds:
        tf = profiles.tf(seed, keyword)
        parts.append(f"{seed}({tf:.2f})")
    return " ".join(parts)


def main() -> None:
    graph = twitter_like(1000, avg_degree=10, rng=31)
    topics = TopicSpace.default(12)
    profiles = zipf_profiles(graph.n, topics, rng=31)
    policy = ThetaPolicy(epsilon=0.6, K=20, cap=1500, online_cap=15_000)

    models = {
        "IC": IndependentCascade(graph),
        "LT": LinearThreshold(graph, weight_rng=31),
        "TR(IC)": GeneralTriggering.independent(graph),
    }

    keyword = "music"
    query = KBTIMQuery([keyword], k=8)
    print(f"advertisement: {query!r}")
    print(f"seeds annotated with tf(seed, {keyword!r})\n")

    results = {}
    for name, model in models.items():
        answer = wris_query(model, profiles, query, policy=policy, rng=31)
        results[name] = answer
        spread = estimate_spread(
            model,
            answer.seeds,
            n_samples=200,
            weights=profiles.phi_vector([keyword]),
            rng=31,
        )
        print(f"{name:7} spread={spread.mean:8.2f}  "
              f"seeds: {describe(profiles, topics, answer.seeds, keyword)}")

    ic = set(results["IC"].seeds)
    tr = set(results["TR(IC)"].seeds)
    overlap = len(ic & tr) / len(ic)
    print(f"\nIC vs TR(IC) seed overlap: {overlap:.0%} "
          "(same distribution, independent samples)")
    print("LT picks can differ — edge semantics change — but all three run")
    print("through the identical WRIS machinery, as the paper claims.")


if __name__ == "__main__":
    main()
