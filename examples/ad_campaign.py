#!/usr/bin/env python
"""Targeted advertising campaign: the scenario from the paper's intro.

An advertiser runs three campaigns with different keyword profiles on the
same social platform (a news-media-like link graph).  For each campaign we
select seed influencers with a KB-TIM query and compare against

* the *untargeted* RIS baseline (the same celebrities for every ad), and
* a naive "most followed" heuristic (out-degree ranking).

The output shows per-campaign targeted reach: KB-TIM seeds adapt to each
advertisement while both baselines return keyword-oblivious answers.

Run:  python examples/ad_campaign.py
"""

import numpy as np

from repro import (
    IndependentCascade,
    KBTIMQuery,
    ThetaPolicy,
    TopicSpace,
    estimate_spread,
    news_like,
    ris_query,
    wris_query,
    zipf_profiles,
)

CAMPAIGNS = {
    "indie game launch": ["games", "music"],
    "finance newsletter": ["finance", "investing"],
    "trail-running shoes": ["running", "outdoors", "fitness"],
}

K = 8  # seed budget per campaign


def top_out_degree_heuristic(graph, k):
    """The 'most followed accounts' folk strategy."""
    return tuple(int(v) for v in np.argsort(-graph.out_degrees())[:k])


def main() -> None:
    print("building a news-media-like platform ...")
    graph = news_like(2000, avg_degree=4.0, rng=11)
    topics = TopicSpace.default(48)
    profiles = zipf_profiles(graph.n, topics, mean_topics_per_user=3, rng=11)
    model = IndependentCascade(graph)
    policy = ThetaPolicy(epsilon=0.6, K=50, cap=1000, online_cap=20_000)

    untargeted = ris_query(model, K, policy=policy, rng=11)
    celebrity = top_out_degree_heuristic(graph, K)
    print(f"untargeted RIS seeds  : {list(untargeted.seeds)}")
    print(f"most-followed accounts: {list(celebrity)}")

    print(f"\n{'campaign':24} {'targeted reach':>15} {'RIS reach':>11} "
          f"{'celebrity':>11}  seeds")
    print("-" * 100)
    for campaign, keywords in CAMPAIGNS.items():
        query = KBTIMQuery(keywords, K)
        answer = wris_query(model, profiles, query, policy=policy, rng=11)
        weights = profiles.phi_vector(keywords)

        def reach(seeds):
            return estimate_spread(
                model, seeds, n_samples=250, weights=weights, rng=11
            ).mean

        print(
            f"{campaign:24} {reach(answer.seeds):15.2f} "
            f"{reach(untargeted.seeds):11.2f} {reach(celebrity):11.2f}  "
            f"{list(answer.seeds)}"
        )

    print("\nTargeted seeds change with every campaign and dominate both")
    print("keyword-oblivious strategies on *relevant* reach — the paper's")
    print("motivation for KB-TIM over classic IM (Sections 1 and 6.6).")


if __name__ == "__main__":
    main()
